"""Process-parallel experiment sweeps with a supervising watchdog.

Binary-search optimization is inherently sequential, but the paper's
*evaluations* are embarrassingly parallel: every (workload, architecture,
objective) cell of tables 1-4 is independent.  This module runs such
sweeps across processes (the offline counterpart of an mpi4py
scatter/gather, cf. the hpc-parallel guides) and -- because the cells are
NP-hard solves -- supervises them:

    from repro.parallel import run_sweep

    results = run_sweep(solve_cell, cells, processes=4,
                        cell_timeout=300.0, retries=1,
                        checkpoint="sweep.ckpt.json")

- **per-cell timeout**: a worker exceeding ``cell_timeout`` is killed
  (SIGTERM, then SIGKILL) -- one pathological cell cannot stall the
  whole table,
- **hung/crashed-worker detection**: a worker that dies without
  reporting (segfault, OOM kill, ``os._exit``) is noticed immediately
  via its result pipe's EOF,
- **bounded retry**: killed and crashed cells are retried up to
  ``retries`` times with exponential backoff; cells that merely *raise*
  are recorded (deterministic failures) unless ``retry_errors`` is set,
- **checkpoint/resume**: finished cells are recorded in a
  :class:`repro.robust.checkpoint.SweepCheckpoint` (object or JSON path)
  and skipped when the sweep is re-run after an interruption,
- **debuggable failures**: ``SweepResult.error`` carries the worker's
  full traceback, not just ``type: message``.

Each cell runs in its own process with its own result pipe, so killing a
hung worker cannot corrupt a shared queue.  Requirements: the worker
function and its parameters must be picklable (top-level functions,
plain data).  ``processes=0`` or ``1`` falls back to in-process
execution (useful under coverage tools and on platforms with constrained
``fork``) -- unless ``cell_timeout`` is set, which always uses worker
processes because an in-process cell cannot be killed.

Caveat for resumed sweeps: recorded values round-trip through JSON, so
tuples come back as lists and non-JSON-serializable values are re-run.
A restored cell that fails JSON-shape validation (a hand-edited or
tool-mangled checkpoint) is re-queued, not raised on.

**Fabric mode** (``fabric_dir=...``) supersedes the JSON checkpoint
with the sharded experiment fabric of :mod:`repro.fabric`: cells become
content-addressed jobs, results land in an append-only deduplicating
store shared across runs and machines, and lease-based work-stealing
workers survive SIGKILL (a peer re-runs the lost cell).  A legacy JSON
``checkpoint`` passed alongside ``fabric_dir`` is imported into the
store once, then ignored.  See ``docs/FABRIC.md``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Iterable, Sequence

from repro.robust.checkpoint import SweepCheckpoint

__all__ = ["SweepResult", "run_sweep", "default_processes"]


@dataclass
class SweepResult:
    """Outcome of one sweep cell."""

    param: Any
    value: Any = None
    error: str | None = None
    seconds: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def default_processes() -> int:
    """A conservative worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _guarded(fn: Callable, param) -> SweepResult:
    t0 = time.perf_counter()
    try:
        value = fn(param)
        return SweepResult(param=param, value=value,
                           seconds=time.perf_counter() - t0)
    except Exception:  # noqa: BLE001 - sweep isolation by design
        return SweepResult(param=param, error=traceback.format_exc(),
                           seconds=time.perf_counter() - t0)


def _worker(fn: Callable, param, attempt: int, conn) -> None:
    """Worker-process entry: run the cell, report over the pipe."""
    res = _guarded(fn, param)
    res.attempts = attempt
    try:
        conn.send(res)
    except Exception:  # unpicklable value: report the failure instead
        res = SweepResult(param=param, error=traceback.format_exc(),
                          seconds=res.seconds, attempts=attempt)
        conn.send(res)
    finally:
        conn.close()


@dataclass
class _Running:
    proc: mp.Process
    conn: Any
    started: float
    attempt: int


def _resolve_checkpoint(
    checkpoint: SweepCheckpoint | str | None, params: list
) -> SweepCheckpoint | None:
    if checkpoint is None:
        return None
    if isinstance(checkpoint, str):
        return SweepCheckpoint.load_or_create(checkpoint, params)
    if not checkpoint.fingerprint:
        checkpoint.fingerprint = SweepCheckpoint.for_params(
            params
        ).fingerprint
    elif not checkpoint.matches(params):
        raise ValueError(
            "sweep checkpoint was recorded for a different parameter list"
        )
    return checkpoint


def _from_checkpoint(param, cell: dict) -> SweepResult:
    return SweepResult(
        param=param,
        value=cell.get("value"),
        error=cell.get("error"),
        seconds=cell.get("seconds", 0.0),
        attempts=cell.get("attempts", 1),
    )


def run_sweep(
    fn: Callable[[Any], Any],
    params: Sequence[Any] | Iterable[Any],
    processes: int | None = None,
    *,
    cell_timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.5,
    retry_errors: bool = False,
    checkpoint: SweepCheckpoint | str | None = None,
    poll_interval: float = 0.2,
    fabric_dir: str | None = None,
    lease_ttl: float = 3.0,
    steal: bool = True,
    run_timeout: float | None = None,
    chaos: object | None = None,
) -> list[SweepResult]:
    """Apply ``fn`` to every parameter, optionally across processes.

    Results keep the parameter order.  Exceptions inside a worker are
    captured per cell (``SweepResult.error`` holds the full traceback)
    instead of killing the sweep -- one diverging experiment must not
    lose the others.  See the module docstring for the watchdog knobs
    (``cell_timeout``, ``retries``, ``retry_errors``) and checkpointing.

    With ``fabric_dir`` the sweep runs through the experiment fabric
    (:func:`repro.fabric.fabric_sweep`): ``processes`` becomes the
    worker count, ``retries`` bounds claims per job (``retries + 1``
    attempts, then poison quarantine), ``cell_timeout`` bounds the
    lease-renewal window of one cell, and a ``checkpoint`` is imported
    into the store once for migration.  ``lease_ttl``, ``steal``,
    ``run_timeout`` and ``chaos`` only apply to fabric mode.
    """
    params = list(params)
    if processes is None:
        processes = default_processes()

    if fabric_dir is not None:
        from repro.fabric.coordinator import (
            fabric_sweep,
            import_sweep_checkpoint,
        )

        if checkpoint is not None:
            import_sweep_checkpoint(fabric_dir, checkpoint, params)
        outcome = fabric_sweep(
            fn, params,
            fabric_dir=fabric_dir,
            workers=processes,
            steal=steal,
            lease_ttl=lease_ttl,
            max_attempts=retries + 1,
            retry_errors=retry_errors,
            backoff=retry_backoff,
            job_timeout=cell_timeout,
            run_timeout=run_timeout,
            chaos=chaos,
        )
        return outcome.results

    ckpt = _resolve_checkpoint(checkpoint, params)

    results: list[SweepResult | None] = [None] * len(params)
    todo: list[int] = []
    for i, p in enumerate(params):
        cell = ckpt.get(i) if ckpt is not None else None
        if cell is not None and SweepCheckpoint.valid_cell(cell):
            results[i] = _from_checkpoint(p, cell)
        else:
            todo.append(i)
    if not todo:
        return results  # everything restored from the checkpoint

    def finalize(index: int, res: SweepResult) -> None:
        results[index] = res
        if ckpt is not None:
            try:
                ckpt.record(index, value=res.value, error=res.error,
                            seconds=res.seconds, attempts=res.attempts)
            except OSError:
                # Persistence is gone (full disk, revoked mount): the
                # cell is already recorded in memory, so finish the
                # sweep and deliver results; only resumability is lost.
                ckpt.path = None

    use_workers = cell_timeout is not None or (
        processes > 1 and len(todo) > 1
    )
    if not use_workers:
        for i in todo:
            attempt = 1
            while True:
                res = _guarded(fn, params[i])
                res.attempts = attempt
                if res.ok or not retry_errors or attempt > retries:
                    break
                time.sleep(retry_backoff * (2 ** (attempt - 1)))
                attempt += 1
            finalize(i, res)
        return results

    _supervise(fn, params, todo, max(1, processes), cell_timeout,
               retries, retry_backoff, retry_errors, poll_interval,
               finalize)
    return results


def _supervise(
    fn: Callable,
    params: list,
    todo: list[int],
    processes: int,
    cell_timeout: float | None,
    retries: int,
    retry_backoff: float,
    retry_errors: bool,
    poll_interval: float,
    finalize: Callable[[int, SweepResult], None],
) -> None:
    """The watchdog loop: launch, watch, kill, retry, record."""
    ctx = mp.get_context()
    pending: deque[tuple[int, int, float]] = deque(
        (i, 1, 0.0) for i in todo  # (index, attempt, not_before)
    )
    running: dict[int, _Running] = {}
    remaining = len(todo)

    def kill(run: _Running) -> None:
        run.proc.terminate()
        run.proc.join(1.0)
        if run.proc.is_alive():
            run.proc.kill()
            run.proc.join()
        run.conn.close()

    def handle_failure(index: int, run_or_none, attempt: int,
                       error: str, elapsed: float) -> None:
        nonlocal remaining
        if attempt <= retries:
            not_before = time.monotonic() + retry_backoff * (
                2 ** (attempt - 1)
            )
            pending.append((index, attempt + 1, not_before))
        else:
            finalize(index, SweepResult(
                param=params[index], error=error,
                seconds=elapsed, attempts=attempt,
            ))
            remaining -= 1

    try:
        while remaining > 0:
            now = time.monotonic()
            # Launch ready cells into free worker slots.
            deferred: list[tuple[int, int, float]] = []
            while pending and len(running) < processes:
                index, attempt, not_before = pending.popleft()
                if not_before > now:
                    deferred.append((index, attempt, not_before))
                    continue
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker,
                    args=(fn, params[index], attempt, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                running[index] = _Running(proc, parent_conn,
                                          time.monotonic(), attempt)
            pending.extend(deferred)

            if not running:
                # Only backoff waits remain.
                wake = min(nb for _, _, nb in pending)
                time.sleep(max(0.0, min(wake - time.monotonic(),
                                        poll_interval)))
                continue

            # Sleep until a result, an EOF (crash), or the next deadline.
            timeout = poll_interval
            if cell_timeout is not None:
                soonest = min(r.started for r in running.values())
                timeout = min(
                    timeout,
                    max(0.0, soonest + cell_timeout - time.monotonic()),
                )
            ready = conn_wait([r.conn for r in running.values()],
                              timeout=timeout)

            for conn in ready:
                index = next(i for i, r in running.items()
                             if r.conn is conn)
                run = running.pop(index)
                try:
                    res: SweepResult = conn.recv()
                except (EOFError, OSError):
                    # Worker died without reporting: crash (segfault,
                    # OOM kill, os._exit) -- retry or record.
                    run.proc.join(1.0)
                    handle_failure(
                        index, run, run.attempt,
                        f"worker died without reporting "
                        f"(exit code {run.proc.exitcode}) "
                        f"on attempt {run.attempt}",
                        time.monotonic() - run.started,
                    )
                    conn.close()
                    continue
                conn.close()
                run.proc.join(1.0)
                if not res.ok and retry_errors and run.attempt <= retries:
                    handle_failure(index, run, run.attempt, res.error,
                                   res.seconds)
                    continue
                finalize(index, res)
                remaining -= 1

            # Watchdog: kill workers that exceeded the cell timeout.
            if cell_timeout is not None:
                now = time.monotonic()
                for index, run in list(running.items()):
                    if now - run.started <= cell_timeout:
                        continue
                    del running[index]
                    kill(run)
                    handle_failure(
                        index, run, run.attempt,
                        f"TimeoutError: cell exceeded cell_timeout="
                        f"{cell_timeout:g}s on attempt {run.attempt}; "
                        f"worker killed",
                        now - run.started,
                    )
    finally:
        # Never leak workers, whatever interrupted the supervisor.
        for run in running.values():
            kill(run)
