"""Process-parallel experiment sweeps.

Binary-search optimization is inherently sequential, but the paper's
*evaluations* are embarrassingly parallel: every (workload, architecture,
objective) cell of tables 1-4 is independent.  This module runs such
sweeps across processes with the standard-library executor (the offline
counterpart of an mpi4py scatter/gather, cf. the hpc-parallel guides):

    from repro.parallel import run_sweep

    results = run_sweep(solve_cell, cells, processes=4)

Requirements: the worker function and its parameters must be picklable
(top-level functions, plain data).  ``processes=0`` or ``1`` falls back
to in-process execution (useful under coverage tools and on platforms
with constrained ``fork``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["SweepResult", "run_sweep", "default_processes"]


@dataclass
class SweepResult:
    """Outcome of one sweep cell."""

    param: Any
    value: Any = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def default_processes() -> int:
    """A conservative worker count: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _guarded(fn: Callable, param) -> SweepResult:
    try:
        return SweepResult(param=param, value=fn(param))
    except Exception as exc:  # noqa: BLE001 - sweep isolation by design
        return SweepResult(param=param, error=f"{type(exc).__name__}: {exc}")


def run_sweep(
    fn: Callable[[Any], Any],
    params: Sequence[Any] | Iterable[Any],
    processes: int | None = None,
) -> list[SweepResult]:
    """Apply ``fn`` to every parameter, optionally across processes.

    Results keep the parameter order.  Exceptions inside a worker are
    captured per cell (``SweepResult.error``) instead of killing the
    sweep -- one diverging experiment must not lose the others.
    """
    params = list(params)
    if processes is None:
        processes = default_processes()
    if processes <= 1 or len(params) <= 1:
        return [_guarded(fn, p) for p in params]
    out: list[SweepResult] = []
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = [pool.submit(_guarded, fn, p) for p in params]
        for fut in futures:
            out.append(fut.result())
    return out
