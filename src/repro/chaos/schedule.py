"""Deterministic chaos engineering for the solve stack.

This module generalizes :mod:`repro.robust.faults` (sweep-cell
injection) into a stack-wide registry of **named fault sites**.  Code on
a hardened path declares a site by calling :func:`chaos_point` (control
faults) or :func:`chaos_data` (data faults) at the exact moment the real
world could misbehave; a seeded :class:`ChaosSchedule` decides *if* and
*how* that site misbehaves on its n-th execution.

Design constraints, in order:

1. **Deterministic.**  A schedule is a finite list of
   :class:`ChaosFault` entries built from a seed or a named profile.
   Site executions are counted in ``state_dir`` through the same
   atomic single-byte-append counter files as :class:`repro.robust.
   faults.FaultPlan`, so counting is correct across worker processes
   *and* across a kill/resume sequence of the same run (a resumed
   process continues the counts, so an already-fired one-shot fault
   does not re-fire).
2. **Free when off.**  ``chaos_point`` returns after one module-global
   truthiness check when no schedule is installed; sites on hot paths
   (the solver slice loop, IPC exchange) cost a function call and a
   falsy check.  ``benchmarks/test_chaos_overhead.py`` guards this.
3. **Observable.**  Every injected fault is appended to
   ``state_dir/chaos-events.jsonl`` (one JSON object per line, written
   with a single ``write`` call so concurrent workers interleave whole
   lines) -- CI uploads this log as an artifact of the chaos smoke job.

Fault kinds
-----------

- ``"crash"``         -- ``os._exit(CHAOS_EXIT_CODE)``: the process dies
  on the spot, like a SIGKILL / OOM kill.
- ``"hang"``          -- sleep ``hang_seconds`` (a wedged syscall; kept
  short by default so watchdogs, not the harness, provide liveness).
- ``"io-error"``      -- raise :class:`ChaosIOError` (an ``OSError``):
  the failed write / failed spawn / wedged queue case.
- ``"torn-write"``    -- data faults only: the first half of the bytes
  reach the medium, the rest are lost (crash between two ``write``\\ s).
- ``"corrupt-bytes"`` -- data faults only: one byte (or literal) is
  flipped in transit (bit rot, a buggy NIC, a hostile filesystem).
- ``"disk-full"``     -- raise :class:`ChaosDiskFull` (an ``OSError``
  with ``errno.ENOSPC``); at data sites the *prefix* of the frame up to
  the fault's ``offset`` (default: half) reaches the medium first --
  the mid-write partial-frame shape of a real full disk.
- ``"mem-pressure"``  -- flag-only: :func:`chaos_flag` reports True, so
  the resource governor (``repro.governor``) sees its memory watermark
  as exceeded without the harness allocating a single byte.

Sites
-----

======================  ====================================================
``solver.slice``        worker probe loop, once per solve slice
``worker.spawn``        parent, before starting a probe worker process
``worker.ipc.put``      clause-sharing queue export
``worker.ipc.get``      clause-sharing queue import
``checkpoint.write``    checkpoint bytes on their way to disk (data)
``checkpoint.fsync``    the fsync of a checkpoint temp file
``proof.append``        proof-artifact record bytes on their way to disk
``race.import``         an imported peer lemma, literal-level (data)
``supervisor.stage``    entry of a supervised exact stage
``fabric.store.append`` result-store record bytes on their way to disk (data)
``fabric.store.fsync``  the fsync after a result-store append
``fabric.lease.renew``  a fabric worker's lease heartbeat renewal
``fabric.worker.claim`` a fabric worker claiming a job lease
``serve.accept``        the allocation server admitting one request
``serve.queue``         enqueue/dequeue on a tenant admission queue
``serve.cache``         a warm-start cache lookup or store
``serve.worker``        a serve worker picking up a solve
``serve.drain``         one step of the SIGTERM drain sequence
``flight.append``       flight-recorder JSONL bytes on their way to disk (data)
``governor.disk``       a disk-quota admission check in the governor
``governor.mem``        a memory-watermark reading in the governor
======================  ====================================================
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SITES",
    "KINDS",
    "SITE_KINDS",
    "PROFILES",
    "CHAOS_EXIT_CODE",
    "ChaosIOError",
    "ChaosDiskFull",
    "ChaosFault",
    "ChaosSchedule",
    "chaos_point",
    "chaos_data",
    "chaos_lits",
    "chaos_flag",
    "install",
    "uninstall",
    "current",
    "active",
    "EVENT_LOG_NAME",
]

#: Exit code of a chaos-injected process crash (distinct from the sweep
#: fault injector's 87 so logs attribute deaths to the right harness).
CHAOS_EXIT_CODE = 86

EVENT_LOG_NAME = "chaos-events.jsonl"

SITES = (
    "solver.slice",
    "worker.spawn",
    "worker.ipc.put",
    "worker.ipc.get",
    "checkpoint.write",
    "checkpoint.fsync",
    "proof.append",
    "race.import",
    "supervisor.stage",
    "fabric.store.append",
    "fabric.store.fsync",
    "fabric.lease.renew",
    "fabric.worker.claim",
    "serve.accept",
    "serve.queue",
    "serve.cache",
    "serve.worker",
    "serve.drain",
    "flight.append",
    "governor.disk",
    "governor.mem",
)

KINDS = ("crash", "hang", "io-error", "torn-write", "corrupt-bytes",
         "disk-full", "mem-pressure")

#: Which kinds make sense where.  Control sites (``chaos_point``) cannot
#: tear or corrupt bytes; ``crash`` is limited to sites that execute in
#: expendable worker processes -- crashing the coordinating parent is
#: the SIGKILL scenario, covered by tests/test_kill_resume.py killing
#: the whole process from outside rather than by an in-process site.
SITE_KINDS = {
    "solver.slice": ("crash", "hang", "io-error"),
    "worker.spawn": ("io-error",),
    "worker.ipc.put": ("crash", "hang", "io-error"),
    "worker.ipc.get": ("crash", "hang", "io-error"),
    "checkpoint.write": ("io-error", "torn-write", "corrupt-bytes",
                         "disk-full"),
    "checkpoint.fsync": ("io-error", "hang", "disk-full"),
    "proof.append": ("io-error", "torn-write", "corrupt-bytes",
                     "disk-full"),
    "race.import": ("torn-write", "corrupt-bytes", "io-error"),
    "supervisor.stage": ("io-error",),
    "fabric.store.append": ("io-error", "torn-write", "corrupt-bytes",
                            "disk-full"),
    "fabric.store.fsync": ("io-error", "hang", "disk-full"),
    "fabric.lease.renew": ("crash", "hang", "io-error"),
    "fabric.worker.claim": ("crash", "hang", "io-error"),
    # Serve sites run inside the (long-lived) server process, so crash
    # is excluded like supervisor.stage: killing the whole server is the
    # SIGTERM/SIGKILL restart scenario, covered by the drain/resume
    # torture tests from outside rather than by an in-process site.
    "serve.accept": ("hang", "io-error"),
    "serve.queue": ("hang", "io-error"),
    "serve.cache": ("hang", "io-error"),
    "serve.worker": ("hang", "io-error"),
    "serve.drain": ("hang", "io-error"),
    "flight.append": ("io-error", "torn-write", "corrupt-bytes",
                      "disk-full"),
    # Governor sites: resource exhaustion seen *by the governor itself*.
    # ``governor.disk`` forces a quota rejection regardless of real
    # usage; ``governor.mem`` is flag-only (queried via chaos_flag) and
    # forces the watermark over threshold.
    "governor.disk": ("disk-full", "io-error"),
    "governor.mem": ("mem-pressure",),
}


class ChaosIOError(OSError):
    """The injected ``io-error`` fault (an :class:`OSError` on purpose:
    hardened code must survive it through its *ordinary* error
    handling, not through knowledge of the harness)."""


class ChaosDiskFull(ChaosIOError):
    """The injected ``disk-full`` fault: an ``OSError`` carrying
    ``errno.ENOSPC`` so hardened code sees exactly what a full disk
    produces.  ``partial`` holds the frame prefix that reached the
    medium before space ran out (empty at control sites); data-site
    callers land it before handling the error, so torn-tail repair --
    not luck -- decides what survives."""

    def __init__(self, site: str, partial: bytes = b""):
        super().__init__(
            errno.ENOSPC, f"chaos: injected disk-full at {site}"
        )
        self.site = site
        self.partial = partial


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault: ``site`` misbehaves as ``kind`` on its
    executions number ``trigger`` .. ``trigger + repeat - 1`` (1-based,
    counted across all processes of the run)."""

    site: str
    trigger: int
    kind: str
    repeat: int = 1
    #: For ``disk-full`` at data sites only: how many bytes of the frame
    #: reach the medium before ENOSPC (None = half the frame).
    offset: int | None = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown chaos site {self.site!r}")
        allowed = SITE_KINDS[self.site]
        if self.kind not in allowed:
            raise ValueError(
                f"kind {self.kind!r} not allowed at {self.site!r} "
                f"(allowed: {', '.join(allowed)})"
            )
        if self.trigger < 1 or self.repeat < 1:
            raise ValueError("trigger and repeat must be >= 1")
        if self.offset is not None:
            if self.kind != "disk-full":
                raise ValueError("offset is only meaningful for disk-full")
            if self.offset < 0:
                raise ValueError("offset must be >= 0")


#: Named profiles: curated schedules for the CLI and the CI smoke job.
#: Each entry is ``(site, trigger, kind, repeat)``.
PROFILES: dict[str, tuple[tuple[str, int, str, int], ...]] = {
    "checkpoint-torture": (
        ("checkpoint.fsync", 1, "io-error", 1),
        ("checkpoint.write", 2, "torn-write", 1),
        ("checkpoint.write", 4, "corrupt-bytes", 1),
    ),
    "worker-carnage": (
        ("worker.spawn", 1, "io-error", 1),
        ("solver.slice", 2, "crash", 1),
        ("solver.slice", 5, "io-error", 1),
    ),
    "ipc-flake": (
        ("worker.ipc.put", 1, "io-error", 2),
        ("worker.ipc.get", 2, "io-error", 2),
        ("race.import", 1, "corrupt-bytes", 2),
    ),
    "proof-tamper": (
        ("proof.append", 1, "torn-write", 1),
        ("proof.append", 3, "corrupt-bytes", 1),
    ),
    "fabric": (
        ("fabric.store.append", 2, "torn-write", 1),
        ("fabric.store.fsync", 3, "io-error", 1),
        ("fabric.lease.renew", 2, "io-error", 1),
        ("fabric.worker.claim", 3, "crash", 1),
    ),
    "serve": (
        ("serve.accept", 2, "io-error", 1),
        ("serve.queue", 3, "io-error", 1),
        ("serve.cache", 1, "io-error", 2),
        ("serve.worker", 2, "io-error", 1),
        ("serve.drain", 1, "io-error", 1),
    ),
    "full-stack": (
        ("checkpoint.write", 1, "torn-write", 1),
        ("checkpoint.fsync", 2, "io-error", 1),
        ("solver.slice", 3, "crash", 1),
        ("worker.ipc.put", 1, "io-error", 1),
        ("proof.append", 2, "torn-write", 1),
        ("supervisor.stage", 1, "io-error", 1),
    ),
    # Resource exhaustion: a full disk at every persistence writer plus
    # the governor's own admission check, and a forced memory watermark.
    "resource": (
        ("checkpoint.write", 1, "disk-full", 1),
        ("proof.append", 2, "disk-full", 1),
        ("fabric.store.append", 2, "disk-full", 1),
        ("flight.append", 1, "disk-full", 1),
        ("governor.disk", 2, "disk-full", 1),
        ("governor.mem", 1, "mem-pressure", 4),
    ),
}


class ChaosSchedule:
    """A deterministic, picklable set of scheduled faults.

    Execution counts live in ``state_dir`` (one counter file per site),
    so one schedule object -- or pickled copies of it in worker
    processes -- observes a single global per-site execution sequence.
    """

    def __init__(
        self,
        state_dir: str,
        faults: list[ChaosFault] | tuple[ChaosFault, ...],
        hang_seconds: float = 0.25,
        seed: int | None = None,
        label: str | None = None,
    ):
        self.state_dir = state_dir
        self.faults = tuple(faults)
        self.hang_seconds = float(hang_seconds)
        self.seed = seed
        self.label = label
        self._by_site: dict[str, tuple[ChaosFault, ...]] = {}
        for f in self.faults:
            self._by_site[f.site] = self._by_site.get(f.site, ()) + (f,)
        os.makedirs(state_dir, exist_ok=True)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        state_dir: str,
        sites: tuple[str, ...] | None = None,
        max_faults: int = 5,
        max_trigger: int = 6,
        hang_seconds: float = 0.25,
    ) -> "ChaosSchedule":
        """A randomized-but-pinned schedule: same seed, same faults."""
        rng = random.Random(seed)
        pool = tuple(sites) if sites is not None else SITES
        faults = []
        for _ in range(rng.randint(1, max_faults)):
            site = rng.choice(pool)
            kind = rng.choice(SITE_KINDS[site])
            faults.append(
                ChaosFault(
                    site,
                    trigger=rng.randint(1, max_trigger),
                    kind=kind,
                    repeat=rng.randint(1, 2),
                )
            )
        return cls(state_dir, faults, hang_seconds=hang_seconds,
                   seed=seed, label=f"seed:{seed}")

    @classmethod
    def from_profile(
        cls, name: str, state_dir: str, hang_seconds: float = 0.25
    ) -> "ChaosSchedule":
        try:
            spec = PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown chaos profile {name!r} "
                f"(available: {', '.join(sorted(PROFILES))})"
            ) from None
        faults = [ChaosFault(site, trig, kind, rep)
                  for site, trig, kind, rep in spec]
        return cls(state_dir, faults, hang_seconds=hang_seconds,
                   label=f"profile:{name}")

    # -- cross-process counting (FaultPlan's atomic-append pattern) -----

    def _counter_path(self, site: str) -> str:
        return os.path.join(
            self.state_dir, f"site-{site.replace('.', '_')}.count"
        )

    def executions_of(self, site: str) -> int:
        """How many times ``site`` has executed under this schedule."""
        try:
            return os.path.getsize(self._counter_path(site))
        except OSError:
            return 0

    @property
    def event_log_path(self) -> str:
        return os.path.join(self.state_dir, EVENT_LOG_NAME)

    def events(self) -> list[dict]:
        """The injected-fault log (empty when nothing fired yet)."""
        try:
            with open(self.event_log_path) as fh:
                return [json.loads(line) for line in fh if line.strip()]
        except OSError:
            return []

    def _log_event(self, site: str, kind: str, count: int) -> None:
        record = {
            "site": site,
            "kind": kind,
            "execution": count,
            "pid": os.getpid(),
            "label": self.label,
        }
        try:
            with open(self.event_log_path, "a") as fh:
                fh.write(json.dumps(record) + "\n")
        except OSError:
            pass  # the event log must never take the run down

    # -- the decision ---------------------------------------------------

    def hit(self, site: str) -> str | None:
        """Record one execution of ``site``; return the fault kind to
        inject now, or None.  Sites with no scheduled fault skip the
        counter-file round-trip entirely."""
        fault = self.hit_fault(site)
        return fault.kind if fault is not None else None

    def hit_fault(self, site: str) -> ChaosFault | None:
        """Like :meth:`hit` but returns the whole scheduled fault, so
        data sites can honour per-fault parameters (``offset``)."""
        entries = self._by_site.get(site)
        if not entries:
            return None
        with open(self._counter_path(site), "ab") as fh:
            fh.write(b".")
            fh.flush()
            count = fh.tell()  # executions including this one
        for f in entries:
            if f.trigger <= count < f.trigger + f.repeat:
                self._log_event(site, f.kind, count)
                return f
        return None

    def describe(self) -> str:
        parts = [f"{f.site}@{f.trigger}" +
                 (f"x{f.repeat}" if f.repeat > 1 else "") + f":{f.kind}"
                 for f in self.faults]
        head = self.label or "chaos"
        return f"{head} [{', '.join(parts)}]"


# -- process-global installation ---------------------------------------

#: Stack of installed schedules (a stack for re-entrancy: a supervised
#: solve wraps `active()` around stages that wrap it again).  Only the
#: top entry is consulted.
_ACTIVE: list[ChaosSchedule] = []


def install(schedule: ChaosSchedule) -> None:
    """Install ``schedule`` for the rest of this process's life (worker
    processes call this once on startup)."""
    _ACTIVE.append(schedule)


def uninstall(schedule: ChaosSchedule) -> None:
    if schedule in _ACTIVE:
        _ACTIVE.reverse()
        _ACTIVE.remove(schedule)
        _ACTIVE.reverse()


def current() -> ChaosSchedule | None:
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def active(schedule: ChaosSchedule | None):
    """Scope ``schedule`` over a block; ``None`` is a cheap no-op (so
    call sites can pass ``request.chaos`` unconditionally)."""
    if schedule is None:
        yield
        return
    _ACTIVE.append(schedule)
    try:
        yield
    finally:
        if _ACTIVE and _ACTIVE[-1] is schedule:
            _ACTIVE.pop()
        else:  # pragma: no cover - unbalanced install/uninstall
            uninstall(schedule)


# -- the fault sites ----------------------------------------------------

def chaos_point(site: str) -> None:
    """A control fault site.  Free when no schedule is installed.

    ``crash`` exits the process, ``hang`` sleeps, ``io-error`` raises
    :class:`ChaosIOError`; data kinds are rejected at schedule build
    time for control sites.
    """
    if not _ACTIVE:
        return
    sched = _ACTIVE[-1]
    kind = sched.hit(site)
    if kind is None:
        return
    if kind == "crash":
        os._exit(CHAOS_EXIT_CODE)
    if kind == "hang":
        time.sleep(sched.hang_seconds)
        return
    if kind == "mem-pressure":
        return  # flag-only kind: consulted through chaos_flag
    if kind == "disk-full":
        raise ChaosDiskFull(site)
    raise ChaosIOError(f"chaos: injected {kind} at {site}")


def chaos_data(site: str, data: bytes) -> tuple[bytes, str | None]:
    """A data fault site: bytes on their way to a medium.

    Returns ``(possibly_damaged_bytes, fault_kind_or_None)``.  A
    ``torn-write`` keeps the first half; ``corrupt-bytes`` flips one
    byte in the middle.  ``io-error`` raises; ``crash`` exits.  The
    caller decides what "the damaged bytes reached the medium" means
    for its format.
    """
    if not _ACTIVE:
        return data, None
    sched = _ACTIVE[-1]
    fault = sched.hit_fault(site)
    if fault is None:
        return data, None
    kind = fault.kind
    if kind == "crash":
        os._exit(CHAOS_EXIT_CODE)
    if kind == "hang":
        time.sleep(sched.hang_seconds)
        return data, None
    if kind == "io-error":
        raise ChaosIOError(f"chaos: injected io-error at {site}")
    if kind == "disk-full":
        cut = len(data) // 2 if fault.offset is None else fault.offset
        raise ChaosDiskFull(site, partial=data[: min(cut, len(data))])
    if kind == "torn-write":
        return data[: len(data) // 2], kind
    # corrupt-bytes: flip one byte mid-payload (or the only byte).
    if not data:
        return data, kind
    buf = bytearray(data)
    buf[len(buf) // 2] ^= 0xFF
    return bytes(buf), kind


def chaos_lits(site: str, lits: tuple) -> tuple | None:
    """A data fault site for a clause in transit (literal level).

    Returns the (possibly damaged) literal tuple, or ``None`` when the
    clause was lost in transit (``io-error``).  ``corrupt-bytes``
    negates one literal, ``torn-write`` drops the tail literal --
    either way the receiver's RUP verification, not luck, must decide
    whether the damaged lemma is still sound.
    """
    if not _ACTIVE:
        return lits
    sched = _ACTIVE[-1]
    kind = sched.hit(site)
    if kind is None:
        return lits
    if kind == "crash":
        os._exit(CHAOS_EXIT_CODE)
    if kind == "hang":
        time.sleep(sched.hang_seconds)
        return lits
    if kind == "io-error":
        return None
    if not lits:
        return lits
    if kind == "torn-write":
        return lits[:-1]
    mid = len(lits) // 2
    return lits[:mid] + (-lits[mid],) + lits[mid + 1:]


def chaos_flag(site: str) -> bool:
    """A non-raising, non-mutating query site: does a scheduled fault
    fire at this execution?  Used for conditions the harness *asserts*
    rather than injects -- ``governor.mem`` answering True forces the
    memory watermark over threshold without allocating anything.  Free
    when no schedule is installed."""
    if not _ACTIVE:
        return False
    return _ACTIVE[-1].hit(site) is not None
