"""Deterministic chaos engineering: named fault sites + seeded schedules.

See :mod:`repro.chaos.schedule` for the model and
``docs/ROBUSTNESS.md`` for the failure-mode matrix (site x detection x
recovery x exit code).
"""

from repro.chaos.schedule import (
    CHAOS_EXIT_CODE,
    EVENT_LOG_NAME,
    KINDS,
    PROFILES,
    SITE_KINDS,
    SITES,
    ChaosDiskFull,
    ChaosFault,
    ChaosIOError,
    ChaosSchedule,
    active,
    chaos_data,
    chaos_flag,
    chaos_lits,
    chaos_point,
    current,
    install,
    uninstall,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "EVENT_LOG_NAME",
    "KINDS",
    "PROFILES",
    "SITE_KINDS",
    "SITES",
    "ChaosDiskFull",
    "ChaosFault",
    "ChaosIOError",
    "ChaosSchedule",
    "active",
    "chaos_data",
    "chaos_flag",
    "chaos_lits",
    "chaos_point",
    "current",
    "install",
    "uninstall",
]
