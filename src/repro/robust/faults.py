"""Deterministic fault injection for the supervision layer's tests.

Production-hardening code is only trustworthy when its failure paths are
exercised; this module makes worker crashes, hangs, and mid-cell errors
*reproducible*.  A :class:`FaultPlan` names, per sweep parameter, which
fault to inject and how many times; :class:`FaultInjector` wraps the cell
function and consults the plan inside the worker process.

Attempt counting crosses process boundaries through a one-byte-append
counter file per parameter key in ``state_dir`` (single-byte appends are
atomic on POSIX), so "hang once, then succeed on retry" is expressible --
exactly the scenario the sweep watchdog must handle.

Fault kinds
-----------

- ``"hang"``  -- sleep ``hang_seconds`` (simulates a wedged worker; the
  watchdog must kill it),
- ``"crash"`` -- ``os._exit(FAULT_EXIT_CODE)`` (simulates a segfaulting /
  OOM-killed worker: the process dies without reporting),
- ``"raise"`` -- raise :class:`FaultInjected` (an ordinary cell error).

Mid-probe *solver* interrupts need no machinery of their own: a
:class:`repro.robust.budget.Budget` with a small ``max_decisions`` or
``max_conflicts`` interrupts the CDCL loop deterministically.

Certificate corruption (:func:`corrupt_proof_line`,
:func:`corrupt_allocation`) injects single-point defects into proof logs
and SAT witnesses, so the tests can demonstrate that the
:mod:`repro.certify` checkers reject tampered artifacts instead of
silently passing them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultInjector",
    "FAULT_EXIT_CODE",
    "corrupt_proof_line",
    "corrupt_allocation",
    "PROOF_CORRUPTIONS",
]

FAULT_EXIT_CODE = 87  # distinctive worker exit code for injected crashes

_KINDS = ("hang", "crash", "raise")


class FaultInjected(RuntimeError):
    """The error raised by a ``"raise"`` fault."""


@dataclass
class FaultPlan:
    """Which faults to inject, keyed by ``repr(param)`` of the sweep cell.

    ``faults`` maps the parameter key to ``(kind, times)``: the fault
    fires on the first ``times`` executions of that cell (attempts are
    counted in ``state_dir`` across worker processes), then the cell runs
    normally -- so a killed-and-retried cell can succeed.
    """

    state_dir: str
    faults: dict[str, tuple[str, int]] = field(default_factory=dict)
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for key, (kind, times) in self.faults.items():
            if kind not in _KINDS:
                raise ValueError(f"unknown fault kind {kind!r} for {key!r}")
            if times < 1:
                raise ValueError(f"fault for {key!r} must fire >= 1 time")
        os.makedirs(self.state_dir, exist_ok=True)

    def _counter_path(self, key: str) -> str:
        digest = "".join(c if c.isalnum() else "_" for c in key)[:80]
        return os.path.join(self.state_dir, f"fault-{digest}.count")

    def executions_of(self, key: str) -> int:
        """How many times the cell for ``key`` has started executing."""
        try:
            return os.path.getsize(self._counter_path(key))
        except OSError:
            return 0

    def fault_for(self, param) -> str | None:
        """Consult (and advance) the plan for one cell execution.

        Returns the fault kind to inject now, or ``None`` to run the cell
        normally.  Called inside the worker process.
        """
        key = repr(param)
        entry = self.faults.get(key)
        if entry is None:
            return None
        kind, times = entry
        path = self._counter_path(key)
        with open(path, "ab") as fh:
            fh.write(b".")
            fh.flush()
            count = fh.tell()  # executions including this one
        return kind if count <= times else None


#: Supported single-line proof corruption modes.
PROOF_CORRUPTIONS = ("flip-lit", "drop-lit", "drop-line", "bump-bound")


def corrupt_proof_line(
    lines: list[str], index: int, mode: str
) -> list[str]:
    """Return a copy of ``lines`` with a single-point defect at ``index``.

    Modes (see :data:`PROOF_CORRUPTIONS`):

    - ``"flip-lit"``  -- negate the first literal of the line,
    - ``"drop-lit"``  -- remove the first literal of the line,
    - ``"drop-line"`` -- remove the whole line,
    - ``"bump-bound"`` -- increment a PB line's bound (``b`` lines only).

    Lines without a corruptible payload (comments, empty clauses for the
    literal modes, non-PB lines for ``bump-bound``) are left unchanged --
    the caller must pick a suitable target line.
    """
    if mode not in PROOF_CORRUPTIONS:
        raise ValueError(f"unknown proof corruption mode {mode!r}")
    out = list(lines)
    line = out[index]
    tokens = line.split()
    if not tokens or tokens[0] == "c":
        return out
    if mode == "drop-line":
        del out[index]
        return out
    if mode == "bump-bound":
        if tokens[0] != "b":
            return out
        tokens[1] = str(int(tokens[1]) + 1)
        out[index] = " ".join(tokens)
        return out
    # Literal modes: find the first literal token (skip the head marker
    # and, for PB lines, bound/coefficient positions).
    if tokens[0] == "b":
        pos = 3  # "b bound coef lit ..." -> first literal
    elif tokens[0] in ("i", "d"):
        pos = 1
    else:
        pos = 0
    if pos >= len(tokens) or tokens[pos] == "0":
        return out  # no literal to corrupt (e.g. the empty clause)
    if mode == "flip-lit":
        tokens[pos] = str(-int(tokens[pos]))
    else:  # drop-lit
        del tokens[pos]
    out[index] = " ".join(tokens)
    return out


def corrupt_allocation(alloc, ecu_names: list[str]):
    """Return a copy of ``alloc`` with one task moved to a different ECU
    (deterministically: the lexicographically first task, cycled to the
    next ECU name) -- a single-point witness corruption."""
    import copy

    out = copy.deepcopy(alloc)
    name = min(out.task_ecu)
    current = out.task_ecu[name]
    others = [p for p in ecu_names if p != current]
    if not others:
        raise ValueError("cannot corrupt: only one ECU in the architecture")
    out.task_ecu[name] = others[0]
    return out


class FaultInjector:
    """Picklable wrapper injecting a :class:`FaultPlan` into a cell fn.

    Usage::

        plan = FaultPlan(state_dir, faults={repr(3): ("hang", 1)})
        results = run_sweep(FaultInjector(fn, plan), params,
                            processes=2, cell_timeout=1.0, retries=1)
    """

    def __init__(self, fn, plan: FaultPlan):
        self.fn = fn
        self.plan = plan

    def __call__(self, param):
        kind = self.plan.fault_for(param)
        if kind == "hang":
            time.sleep(self.plan.hang_seconds)
        elif kind == "crash":
            os._exit(FAULT_EXIT_CODE)
        elif kind == "raise":
            raise FaultInjected(f"injected fault for param {param!r}")
        return self.fn(param)
