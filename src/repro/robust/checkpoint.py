"""Checkpoint/resume state for binary searches and benchmark sweeps.

Both checkpoints serialize to plain JSON so an interrupted run can be
inspected, archived, or resumed on another machine:

- :class:`SearchCheckpoint` records the BIN_SEARCH interval ``[left,
  right]``, the probe log, and an optional caller payload (the best
  allocation found so far).  :func:`repro.core.optimize.bin_search`
  updates it after every probe and consults it on resume -- a resumed
  search re-certifies the optimum with a final probe, so the result is
  exactly the one an uninterrupted run would have produced.
- :class:`SweepCheckpoint` records finished sweep cells by index (guarded
  by a fingerprint of the parameter list), so
  :func:`repro.parallel.run_sweep` can skip completed cells after an
  interruption.

Crash safety is layered:

- Saves are atomic and durable (write-to-temp + fsync + rename + dir
  fsync): a crash mid-save leaves the previous checkpoint intact.
- Every saved document carries an **integrity envelope** (``integrity``
  key: schema version, monotonically increasing generation number, and
  a SHA-256 over the canonical payload), so a load *verifies* the bytes
  instead of trusting whatever parses.
- Saves rotate **generations** (``ck.json`` newest, ``ck.json.g1``
  one older, ... keep :data:`GENERATIONS` total): when the newest file
  is damaged anyway -- torn by a dying filesystem, bit-flipped, written
  by a buggy tool -- the load falls back to the newest generation that
  verifies, and renames every damaged candidate to ``*.quarantined``
  for post-mortem instead of deleting the evidence.
- When *no* candidate verifies, the load raises the typed
  :class:`CheckpointCorrupt` (a :class:`ValueError`, so existing
  ``except (ValueError, OSError)`` resume guards keep working) carrying
  a per-file damage report -- never a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro import governor as _governor
from repro.chaos import ChaosDiskFull, chaos_data, chaos_point

__all__ = [
    "SearchCheckpoint",
    "SweepCheckpoint",
    "atomic_write_json",
    "CheckpointCorrupt",
    "CorruptArtifact",
    "GENERATIONS",
    "save_generations",
    "load_generations",
    "canonical_value",
    "canonical_blob",
]

#: How many checkpoint generations a save keeps on disk.
GENERATIONS = 3

_INTEGRITY_KEY = "integrity"
_ENVELOPE_SCHEMA = 1


@dataclass
class CorruptArtifact:
    """One damaged checkpoint candidate: what was wrong, where it went."""

    path: str
    reason: str
    quarantined_to: str | None = None


class CheckpointCorrupt(ValueError):
    """No generation of a checkpoint survived integrity verification.

    Subclasses :class:`ValueError` so pre-existing resume guards
    (``except (ValueError, OSError)``) treat it as the typed failure it
    is; :attr:`reports` lists every candidate examined and why it was
    rejected (each already quarantined for post-mortem).
    """

    def __init__(self, path: str, reports: list[CorruptArtifact]):
        self.path = path
        self.reports = list(reports)
        detail = "; ".join(
            f"{r.path}: {r.reason}" for r in self.reports
        ) or "no readable candidate"
        super().__init__(
            f"checkpoint {path!r} is corrupt in every generation ({detail})"
        )


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` atomically and durably.

    The temp file is fsynced before the rename (otherwise a crash can
    leave the *renamed* file empty or truncated: rename-over-unflushed-
    data is the classic ext4 zero-length-file hazard), and the containing
    directory is fsynced after it so the rename itself survives a power
    loss.  A failure at any step -- including an unserializable payload
    -- removes the temp file again: no ``*.tmp`` litter, and the
    previous checkpoint stays intact.
    """
    # Serialize before touching the filesystem: an unserializable
    # payload must not even create the temp file.
    data = (json.dumps(payload, indent=2) + "\n").encode()
    # Quota admission runs before any byte lands; a rejection is an
    # ENOSPC-shaped OSError that callers already tolerate (the search
    # degrades to unpersisted, it does not stop).
    _governor.charge("checkpoint", len(data), path=path)
    try:
        data, damage = chaos_data("checkpoint.write", data)
    except ChaosDiskFull as exc:
        # ENOSPC mid-write: model the worst case -- the partial frame
        # lands at the *final* path (a naive writer cut off by the full
        # disk) -- and raise, so the caller sees the same OSError the
        # real thing produces while restart-time verification finds the
        # torn file and quarantines it.
        if exc.partial:
            with open(path, "wb") as fh:
                fh.write(exc.partial)
        raise
    if damage is not None:
        # Chaos decided these bytes get damaged in transit.  Model the
        # worst case -- the damaged bytes land at the *final* path with
        # no atomicity (as if a crash interrupted a naive writer) -- and
        # report success, exactly like the real failure would.
        with open(path, "wb") as fh:
            fh.write(data)
        return
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            chaos_point("checkpoint.fsync")
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dirpath = os.path.dirname(os.path.abspath(path))
    try:
        dfd = os.open(dirpath, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (e.g. Windows)
    try:
        os.fsync(dfd)
    except OSError:
        pass  # directory fsync unsupported on this filesystem
    finally:
        os.close(dfd)


# ----------------------------------------------------------------------
# Integrity envelope + generations


def _canonical_blob(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def _seal(payload: dict, generation: int) -> dict:
    """Attach the integrity envelope to a checkpoint document."""
    body = dict(payload)
    body.pop(_INTEGRITY_KEY, None)
    body[_INTEGRITY_KEY] = {
        "schema": _ENVELOPE_SCHEMA,
        "generation": generation,
        "sha256": hashlib.sha256(_canonical_blob(body)).hexdigest(),
    }
    return body


class _Damaged(Exception):
    """Internal: one candidate file failed verification (reason in args)."""


def _open_verified(path: str) -> tuple[dict, int]:
    """Load + verify one candidate file.

    Returns ``(payload_without_envelope, generation)``; legacy files
    (written before the envelope existed) load as generation 0.
    Raises :class:`_Damaged` with a human reason on any defect.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise _Damaged(f"unreadable: {exc}") from exc
    try:
        data = json.loads(raw.decode("utf-8", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _Damaged(f"not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise _Damaged("not a JSON object")
    envelope = data.pop(_INTEGRITY_KEY, None)
    if envelope is None:
        return data, 0  # legacy, pre-envelope checkpoint
    if not isinstance(envelope, dict):
        raise _Damaged("integrity envelope is not an object")
    schema = envelope.get("schema")
    if not isinstance(schema, int) or schema > _ENVELOPE_SCHEMA:
        raise _Damaged(f"unsupported envelope schema {schema!r}")
    expect = envelope.get("sha256")
    actual = hashlib.sha256(_canonical_blob(data)).hexdigest()
    if actual != expect:
        raise _Damaged("sha256 mismatch (payload bytes damaged)")
    generation = envelope.get("generation")
    if not isinstance(generation, int) or generation < 0:
        raise _Damaged(f"bad generation {generation!r}")
    return data, generation


def _generation_paths(path: str) -> list[str]:
    return [path] + [f"{path}.g{i}" for i in range(1, GENERATIONS)]


def _quarantine(path: str) -> str | None:
    """Move a damaged artifact aside (never delete the evidence)."""
    target = f"{path}.quarantined"
    try:
        os.replace(path, target)
        return target
    except OSError:
        return None


def save_generations(path: str, payload: dict, generation: int) -> None:
    """Seal ``payload`` and write it to ``path``, rotating the previous
    files into the ``.g1``/``.g2``/... generation slots first.  The
    first save of a run writes only ``path`` itself."""
    candidates = _generation_paths(path)
    for i in range(len(candidates) - 1, 0, -1):
        if os.path.exists(candidates[i - 1]):
            try:
                os.replace(candidates[i - 1], candidates[i])
            except OSError:
                pass  # rotation is best-effort; the new save still lands
    atomic_write_json(path, _seal(payload, generation))


def load_generations(path: str) -> tuple[dict, int, list[CorruptArtifact]]:
    """Load the newest generation of ``path`` that verifies.

    Returns ``(payload, generation, damage_reports)``.  Damaged
    candidates are quarantined (renamed ``*.quarantined``).  Raises
    :class:`FileNotFoundError` when no candidate exists at all, and
    :class:`CheckpointCorrupt` when candidates exist but none verifies.
    """
    best: dict | None = None
    best_gen = -1
    reports: list[CorruptArtifact] = []
    found_any = False
    for cand in _generation_paths(path):
        if not os.path.exists(cand):
            continue
        found_any = True
        try:
            payload, gen = _open_verified(cand)
        except _Damaged as exc:
            reports.append(
                CorruptArtifact(cand, str(exc), _quarantine(cand))
            )
            continue
        if gen > best_gen or best is None:
            best, best_gen = payload, gen
    if not found_any:
        raise FileNotFoundError(path)
    if best is None:
        raise CheckpointCorrupt(path, reports)
    return best, best_gen, reports


@dataclass
class SearchCheckpoint:
    """Resumable state of one BIN_SEARCH run.

    ``feasible is None`` means the initial unconstrained SOLVE has not
    finished yet; ``left``/``right`` are only meaningful afterwards.
    ``payload`` is free-form caller state (the :class:`Allocator` stores
    the best decoded allocation there).
    """

    lower: int = 0
    upper: int = 0
    left: int | None = None
    right: int | None = None
    feasible: bool | None = None
    probes: list[dict] = field(default_factory=list)
    payload: dict | None = None
    path: str | None = None
    #: Monotonic save counter (the integrity envelope's generation
    #: number); restored on load so a resumed run keeps counting up.
    generation: int = 0
    #: Damage reports from the load that produced this object (newest
    #: generation corrupt -> fell back), for callers that surface them.
    load_reports: list = field(default_factory=list)

    VERSION = 1

    @property
    def started(self) -> bool:
        """Whether the initial SOLVE finished (there is state to resume)."""
        return self.feasible is not None

    @property
    def finished(self) -> bool:
        """Whether the recorded search already closed its interval."""
        if self.feasible is False:
            return True
        return (
            self.feasible is True
            and self.left is not None
            and self.right is not None
            and self.left >= self.right
        )

    def to_dict(self) -> dict:
        return {
            "kind": "bin_search",
            "version": self.VERSION,
            "lower": self.lower,
            "upper": self.upper,
            "left": self.left,
            "right": self.right,
            "feasible": self.feasible,
            "probes": self.probes,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchCheckpoint":
        if data.get("kind") != "bin_search":
            raise ValueError("not a bin_search checkpoint")
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        return cls(
            lower=data["lower"],
            upper=data["upper"],
            left=data["left"],
            right=data["right"],
            feasible=data["feasible"],
            probes=list(data.get("probes") or []),
            payload=data.get("payload"),
        )

    def save(self, path: str | None = None) -> None:
        """Persist to ``path`` (or the path it was loaded from)."""
        path = path or self.path
        if path is None:
            raise ValueError("no checkpoint path given")
        self.path = path
        self.generation += 1
        save_generations(path, self.to_dict(), self.generation)

    @classmethod
    def load(cls, path: str) -> "SearchCheckpoint":
        payload, generation, reports = load_generations(path)
        out = cls.from_dict(payload)
        out.path = path
        out.generation = generation
        out.load_reports = reports
        return out


def canonical_value(value: Any) -> Any:
    """JSON-shape normalization for fingerprinting.

    A checkpoint round-trips through JSON, which turns tuples into lists
    -- so ``repr``-based hashing would reject its own parameters on
    resume (``(0, 1)`` vs ``[0, 1]``).  Canonicalize containers before
    hashing so a parameter list fingerprints identically before and
    after serialization.  The experiment fabric (:mod:`repro.fabric`)
    keys its content-addressed jobs on the same normalization, so a
    sweep cell hashes identically whether its parameters came from live
    Python objects or from a JSON round trip.
    """
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {
            str(k): canonical_value(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    return value


def canonical_blob(value: Any) -> bytes:
    """Deterministic bytes of ``value`` for content addressing (sorted
    keys, no whitespace, tuples==lists); falls back to ``repr`` for
    values JSON cannot carry (best-effort identity)."""
    canon = canonical_value(value)
    try:
        return json.dumps(
            canon, sort_keys=True, separators=(",", ":")
        ).encode()
    except (TypeError, ValueError):
        return repr(canon).encode()


def _fingerprint(params: list) -> str:
    return hashlib.sha1(canonical_blob(list(params))).hexdigest()


@dataclass
class SweepCheckpoint:
    """Completed-cell record of one :func:`repro.parallel.run_sweep` run.

    Cells are keyed by their index in the parameter list; ``fingerprint``
    guards against resuming with a different parameter list.  Cells whose
    value is not JSON-serializable are *not* recorded (they re-run on
    resume) -- graceful degradation instead of a corrupt checkpoint.
    """

    fingerprint: str = ""
    cells: dict[str, dict] = field(default_factory=dict)
    path: str | None = None
    generation: int = 0
    load_reports: list = field(default_factory=list)

    VERSION = 1

    @classmethod
    def for_params(cls, params: list, path: str | None = None
                   ) -> "SweepCheckpoint":
        return cls(fingerprint=_fingerprint(params), path=path)

    def matches(self, params: list) -> bool:
        return self.fingerprint == _fingerprint(params)

    def record(self, index: int, value: Any = None, error: str | None = None,
               seconds: float = 0.0, attempts: int = 1) -> None:
        cell = {
            "error": error,
            "seconds": seconds,
            "attempts": attempts,
        }
        if error is None:
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                return  # unserializable result: re-run this cell on resume
            cell["value"] = value
        self.cells[str(index)] = cell
        if self.path is not None:
            self.save(self.path)

    def get(self, index: int) -> dict | None:
        return self.cells.get(str(index))

    @staticmethod
    def valid_cell(cell) -> bool:
        """JSON-shape validation of one restored cell record.

        The integrity envelope catches damaged *bytes*, but a checkpoint
        edited by hand, written by an older tool, or mangled by a buggy
        serializer can be byte-intact yet structurally wrong.  Callers
        (``run_sweep``, the fabric's legacy import) re-queue invalid
        cells instead of raising -- one bad record must not lose the
        resume.
        """
        if not isinstance(cell, dict):
            return False
        error = cell.get("error")
        if error is not None and not isinstance(error, str):
            return False
        if error is None and "value" not in cell:
            return False
        if not isinstance(cell.get("seconds", 0.0), (int, float)):
            return False
        if not isinstance(cell.get("attempts", 1), int):
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "kind": "sweep",
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCheckpoint":
        if data.get("kind") != "sweep":
            raise ValueError("not a sweep checkpoint")
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        return cls(
            fingerprint=data.get("fingerprint", ""),
            cells=dict(data.get("cells") or {}),
        )

    def save(self, path: str | None = None) -> None:
        path = path or self.path
        if path is None:
            raise ValueError("no checkpoint path given")
        self.path = path
        self.generation += 1
        save_generations(path, self.to_dict(), self.generation)

    @classmethod
    def load(cls, path: str) -> "SweepCheckpoint":
        payload, generation, reports = load_generations(path)
        out = cls.from_dict(payload)
        out.path = path
        out.generation = generation
        out.load_reports = reports
        return out

    @classmethod
    def load_or_create(cls, path: str, params: list) -> "SweepCheckpoint":
        """Load ``path`` when it exists and matches ``params``; otherwise
        start a fresh checkpoint bound to ``path``."""
        if os.path.exists(path):
            try:
                out = cls.load(path)
            except (ValueError, OSError, json.JSONDecodeError):
                # CheckpointCorrupt lands here too: the damaged files
                # are already quarantined, start fresh at the same path.
                return cls.for_params(params, path=path)
            if out.matches(params):
                return out
        return cls.for_params(params, path=path)
