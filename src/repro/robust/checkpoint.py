"""Checkpoint/resume state for binary searches and benchmark sweeps.

Both checkpoints serialize to plain JSON so an interrupted run can be
inspected, archived, or resumed on another machine:

- :class:`SearchCheckpoint` records the BIN_SEARCH interval ``[left,
  right]``, the probe log, and an optional caller payload (the best
  allocation found so far).  :func:`repro.core.optimize.bin_search`
  updates it after every probe and consults it on resume -- a resumed
  search re-certifies the optimum with a final probe, so the result is
  exactly the one an uninterrupted run would have produced.
- :class:`SweepCheckpoint` records finished sweep cells by index (guarded
  by a fingerprint of the parameter list), so
  :func:`repro.parallel.run_sweep` can skip completed cells after an
  interruption.

Saves are atomic (write-to-temp + rename): a crash mid-save leaves the
previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SearchCheckpoint", "SweepCheckpoint", "atomic_write_json"]


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` atomically and durably.

    The temp file is fsynced before the rename (otherwise a crash can
    leave the *renamed* file empty or truncated: rename-over-unflushed-
    data is the classic ext4 zero-length-file hazard), and the containing
    directory is fsynced after it so the rename itself survives a power
    loss.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dirpath = os.path.dirname(os.path.abspath(path))
    try:
        dfd = os.open(dirpath, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (e.g. Windows)
    try:
        os.fsync(dfd)
    except OSError:
        pass  # directory fsync unsupported on this filesystem
    finally:
        os.close(dfd)


@dataclass
class SearchCheckpoint:
    """Resumable state of one BIN_SEARCH run.

    ``feasible is None`` means the initial unconstrained SOLVE has not
    finished yet; ``left``/``right`` are only meaningful afterwards.
    ``payload`` is free-form caller state (the :class:`Allocator` stores
    the best decoded allocation there).
    """

    lower: int = 0
    upper: int = 0
    left: int | None = None
    right: int | None = None
    feasible: bool | None = None
    probes: list[dict] = field(default_factory=list)
    payload: dict | None = None
    path: str | None = None

    VERSION = 1

    @property
    def started(self) -> bool:
        """Whether the initial SOLVE finished (there is state to resume)."""
        return self.feasible is not None

    @property
    def finished(self) -> bool:
        """Whether the recorded search already closed its interval."""
        if self.feasible is False:
            return True
        return (
            self.feasible is True
            and self.left is not None
            and self.right is not None
            and self.left >= self.right
        )

    def to_dict(self) -> dict:
        return {
            "kind": "bin_search",
            "version": self.VERSION,
            "lower": self.lower,
            "upper": self.upper,
            "left": self.left,
            "right": self.right,
            "feasible": self.feasible,
            "probes": self.probes,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchCheckpoint":
        if data.get("kind") != "bin_search":
            raise ValueError("not a bin_search checkpoint")
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        return cls(
            lower=data["lower"],
            upper=data["upper"],
            left=data["left"],
            right=data["right"],
            feasible=data["feasible"],
            probes=list(data.get("probes") or []),
            payload=data.get("payload"),
        )

    def save(self, path: str | None = None) -> None:
        """Persist to ``path`` (or the path it was loaded from)."""
        path = path or self.path
        if path is None:
            raise ValueError("no checkpoint path given")
        self.path = path
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "SearchCheckpoint":
        with open(path) as fh:
            out = cls.from_dict(json.load(fh))
        out.path = path
        return out


def _canonical(value: Any) -> Any:
    """JSON-shape normalization for fingerprinting.

    A checkpoint round-trips through JSON, which turns tuples into lists
    -- so ``repr``-based hashing would reject its own parameters on
    resume (``(0, 1)`` vs ``[0, 1]``).  Canonicalize containers before
    hashing so a parameter list fingerprints identically before and
    after serialization.
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    return value


def _fingerprint(params: list) -> str:
    canon = _canonical(list(params))
    try:
        blob = json.dumps(canon, sort_keys=True)
    except (TypeError, ValueError):
        blob = repr(canon)  # unserializable params: best-effort identity
    return hashlib.sha1(blob.encode()).hexdigest()


@dataclass
class SweepCheckpoint:
    """Completed-cell record of one :func:`repro.parallel.run_sweep` run.

    Cells are keyed by their index in the parameter list; ``fingerprint``
    guards against resuming with a different parameter list.  Cells whose
    value is not JSON-serializable are *not* recorded (they re-run on
    resume) -- graceful degradation instead of a corrupt checkpoint.
    """

    fingerprint: str = ""
    cells: dict[str, dict] = field(default_factory=dict)
    path: str | None = None

    VERSION = 1

    @classmethod
    def for_params(cls, params: list, path: str | None = None
                   ) -> "SweepCheckpoint":
        return cls(fingerprint=_fingerprint(params), path=path)

    def matches(self, params: list) -> bool:
        return self.fingerprint == _fingerprint(params)

    def record(self, index: int, value: Any = None, error: str | None = None,
               seconds: float = 0.0, attempts: int = 1) -> None:
        cell = {
            "error": error,
            "seconds": seconds,
            "attempts": attempts,
        }
        if error is None:
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                return  # unserializable result: re-run this cell on resume
            cell["value"] = value
        self.cells[str(index)] = cell
        if self.path is not None:
            self.save(self.path)

    def get(self, index: int) -> dict | None:
        return self.cells.get(str(index))

    def to_dict(self) -> dict:
        return {
            "kind": "sweep",
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCheckpoint":
        if data.get("kind") != "sweep":
            raise ValueError("not a sweep checkpoint")
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        return cls(
            fingerprint=data.get("fingerprint", ""),
            cells=dict(data.get("cells") or {}),
        )

    def save(self, path: str | None = None) -> None:
        path = path or self.path
        if path is None:
            raise ValueError("no checkpoint path given")
        self.path = path
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "SweepCheckpoint":
        with open(path) as fh:
            out = cls.from_dict(json.load(fh))
        out.path = path
        return out

    @classmethod
    def load_or_create(cls, path: str, params: list) -> "SweepCheckpoint":
        """Load ``path`` when it exists and matches ``params``; otherwise
        start a fresh checkpoint bound to ``path``."""
        if os.path.exists(path):
            try:
                out = cls.load(path)
            except (ValueError, OSError, json.JSONDecodeError):
                return cls.for_params(params, path=path)
            if out.matches(params):
                return out
        return cls.for_params(params, path=path)
