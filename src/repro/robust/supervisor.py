"""Graceful degradation: an escalation chain that always answers.

``SolveSupervisor`` runs the exact optimizer under supervision and, when
it cannot deliver a certified optimum, degrades through a fixed chain
instead of hanging or crashing::

    incremental BIN_SEARCH  --crash-->  rebuild BIN_SEARCH
           |  budget expired with a model        |  crash / unknown
           v                                     v
    anytime upper bound (honest)        heuristic bound (baselines/)

Every stage is recorded in :class:`StageReport`; the final
:class:`SupervisedResult.status` is always honest about what the returned
allocation *is*:

- ``optimal``      -- certified optimum from an exact stage,
- ``upper_bound``  -- feasible allocation whose cost is an anytime bound
  (budget expired mid-search),
- ``heuristic``    -- allocation from a baseline heuristic (exact stages
  produced nothing usable),
- ``infeasible``   -- an exact stage *certified* unsatisfiability,
- ``unknown``      -- nothing usable and no certificate either.

The supervisor never raises for solver-side failures: a production
caller always gets a usable allocation when one is obtainable, plus the
stage log to understand what happened.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.robust.budget import Budget

if TYPE_CHECKING:  # annotation-only: see the lazy import in __init__
    from repro.core.api import SolveRequest
from repro.robust.checkpoint import SearchCheckpoint

__all__ = ["StageReport", "SupervisedResult", "SolveSupervisor"]

_UNSET = object()


@dataclass
class StageReport:
    """What one escalation stage did."""

    stage: str
    status: str  # optimal/upper_bound/infeasible/unknown/failed/skipped
    seconds: float = 0.0
    detail: str | None = None


@dataclass
class SupervisedResult:
    """Outcome of a supervised solve: always usable, always honest."""

    status: str
    cost: int | None = None
    allocation: object | None = None
    proven: bool = False
    #: AllocationResult of the last exact stage that produced one.
    result: object | None = None
    stages: list[StageReport] = field(default_factory=list)

    @property
    def usable(self) -> bool:
        """Whether :attr:`allocation` holds a deployable allocation."""
        return self.allocation is not None


class SolveSupervisor:
    """Supervise one allocation solve end-to-end.

    All options ride on the :class:`~repro.core.api.SolveRequest`
    (passed positionally or as ``request=``); the legacy per-kwarg shim
    is gone and passing one raises :class:`TypeError` with a migration
    hint.  ``request.heuristics`` names the fallback chain tried (in
    order) when the exact stages produce no usable result; pass ``()``
    when the caller races its own heuristics (as :func:`repro.core.
    portfolio.solve_portfolio` does).  ``request.checkpoint`` is
    forwarded to the incremental stage, so an interrupted supervised
    run resumes too.
    """

    def __init__(
        self,
        tasks,
        arch,
        objective=_UNSET,
        request: SolveRequest | None = None,
        **legacy,
    ):
        # Imported lazily: repro.sat pulls in repro.robust for Budget,
        # so a module-level repro.core import here would close an import
        # cycle (arith -> sat -> robust -> core -> arith).
        from repro.core.api import SolveRequest, reject_legacy

        if isinstance(objective, SolveRequest):
            if request is not None:
                raise TypeError(
                    "pass the SolveRequest positionally or as request=, "
                    "not both"
                )
            request, objective = objective, _UNSET
        reject_legacy("SolveSupervisor", legacy)
        request = request if request is not None else SolveRequest()
        if objective is not _UNSET and objective is not None:
            request = request.merged(objective=objective)
        self.request = request
        self.tasks = tasks
        self.arch = arch
        self.objective = request.objective
        self.config = request.config
        self.budget: Budget | None = request.budget
        self.checkpoint: SearchCheckpoint | str | None = request.checkpoint
        self.heuristics = tuple(request.heuristics)
        self.verify = request.verify
        #: Ask the exact stages for per-probe certificates (proof-checked
        #: UNSAT answers, audited SAT witnesses); see :mod:`repro.certify`.
        self.certify = request.certify
        #: JSONL flight recorder for stage transitions (``None`` = off);
        #: every escalation step lands in the log with a timestamp and
        #: the reason, so a production operator can reconstruct *why* a
        #: solve degraded without re-running it.
        self.recorder = None
        if request.flight_log:
            from repro.robust.flight import FlightRecorder

            self.recorder = FlightRecorder(
                request.flight_log, actor="supervisor"
            )

    def _record(self, event: str, **extra) -> None:
        if self.recorder is not None:
            self.recorder.log(event, **extra)

    # ------------------------------------------------------------------

    def solve(self) -> SupervisedResult:
        from repro.chaos import active

        with active(self.request.chaos):
            return self._solve()

    def _solve(self) -> SupervisedResult:
        out = SupervisedResult(status="unknown")
        exact_chain = ["incremental", "rebuild"]
        if self.request.parallel:
            # Parallel requests lead with the speculative engine; the
            # sequential stages remain behind it as the degradation path.
            exact_chain.insert(0, "speculative")
        self._record("solve.start", chain=exact_chain)
        for i, stage in enumerate(exact_chain):
            if i > 0 and self.budget is not None and self.budget.expired():
                out.stages.append(
                    StageReport(
                        stage, "skipped", detail="budget exhausted"
                    )
                )
                self._record("stage.skipped", stage=stage,
                             reason="budget exhausted")
                continue
            exact = self._exact_stage(out, stage)
            if exact is not None:
                self._record("solve.end", status=exact.status,
                             cost=exact.cost, proven=exact.proven)
                return exact
        out = self._heuristic_stages(out)
        self._record("solve.end", status=out.status,
                     cost=out.cost, proven=out.proven)
        return out

    # ------------------------------------------------------------------

    def _stage_request(self, stage: str) -> SolveRequest:
        """The per-stage :class:`SolveRequest` variant."""
        req = self.request
        if stage == "speculative":
            return req
        if stage == "incremental":
            return req.merged(
                strategy="incremental", processes=1, race=1, speculate=0
            )
        return req.merged(
            strategy="rebuild", reuse_learned=False,
            processes=1, race=1, speculate=0, checkpoint=None,
        )

    def _exact_stage(
        self, out: SupervisedResult, stage: str
    ) -> SupervisedResult | None:
        """Run one exact stage.  Returns the finished result when the
        stage settled the problem (optimum, honest anytime bound, or a
        certificate of infeasibility); None to escalate."""
        from repro.chaos import chaos_point
        from repro.core.allocator import Allocator

        t0 = time.perf_counter()
        self._record("stage.start", stage=stage)
        try:
            # Named fault site: an injected io-error here exercises the
            # "stage fails before solving anything" escalation path.
            chaos_point("supervisor.stage")
            res = Allocator(self.tasks, self.arch, self.config).minimize(
                request=self._stage_request(stage)
            )
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            out.stages.append(
                StageReport(
                    stage, "failed",
                    seconds=time.perf_counter() - t0,
                    detail=traceback.format_exc(),
                )
            )
            self._record("stage.end", stage=stage, status="failed",
                         seconds=round(time.perf_counter() - t0, 4),
                         reason=f"{type(exc).__name__}: {exc}")
            return None
        status = res.status
        reason = res.outcome.interrupt_reason if res.outcome else None
        out.stages.append(
            StageReport(
                stage, status,
                seconds=time.perf_counter() - t0,
                detail=reason,
            )
        )
        self._record("stage.end", stage=stage, status=status,
                     seconds=round(time.perf_counter() - t0, 4),
                     reason=reason)
        out.result = res
        if status == "unknown":
            return None  # escalate: no model, no certificate
        if status == "upper_bound" and res.allocation is None:
            return None  # bound without a usable model: escalate
        out.status = status
        out.cost = res.cost
        out.allocation = res.allocation
        out.proven = res.proven
        return out

    def _heuristic_stages(self, out: SupervisedResult) -> SupervisedResult:
        """Last resort: a cheap, bounded heuristic allocation with an
        honest ``heuristic`` status."""
        from repro.baselines.common import evaluate_cost
        from repro.core.objectives import objective_spec

        spec, medium = objective_spec(self.objective)
        for name in self.heuristics:
            t0 = time.perf_counter()
            self._record("stage.start", stage=f"heuristic:{name}")
            try:
                feasible, alloc = self._run_heuristic(name, spec, medium)
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                out.stages.append(
                    StageReport(
                        f"heuristic:{name}", "failed",
                        seconds=time.perf_counter() - t0,
                        detail=traceback.format_exc(),
                    )
                )
                self._record("stage.end", stage=f"heuristic:{name}",
                             status="failed",
                             seconds=round(time.perf_counter() - t0, 4),
                             reason=f"{type(exc).__name__}: {exc}")
                continue
            secs = time.perf_counter() - t0
            if not feasible or alloc is None:
                out.stages.append(
                    StageReport(f"heuristic:{name}", "unknown", seconds=secs)
                )
                self._record("stage.end", stage=f"heuristic:{name}",
                             status="unknown", seconds=round(secs, 4),
                             reason="no feasible allocation found")
                continue
            cost = evaluate_cost(self.tasks, self.arch, alloc, spec, medium)
            out.stages.append(
                StageReport(f"heuristic:{name}", "heuristic", seconds=secs)
            )
            self._record("stage.end", stage=f"heuristic:{name}",
                         status="heuristic", seconds=round(secs, 4),
                         reason=None)
            out.status = "heuristic"
            out.cost = cost
            out.allocation = alloc
            out.proven = False
            return out
        # Nothing anywhere: status stays "unknown" (or whatever an exact
        # stage certified before failing to produce a model).
        return out

    def _run_heuristic(self, name: str, spec: str, medium: str | None):
        if name == "greedy":
            from repro.baselines.greedy import greedy_first_fit

            res = greedy_first_fit(self.tasks, self.arch)
            return res.feasible, res.allocation
        if name == "annealing":
            from repro.baselines.annealing import simulated_annealing

            res = simulated_annealing(
                self.tasks, self.arch, objective=spec, medium=medium,
                iterations=800, seed=1,
            )
            return res.feasible, res.allocation
        if name == "genetic":
            from repro.baselines.genetic import genetic_allocator

            res = genetic_allocator(
                self.tasks, self.arch, objective=spec, medium=medium,
                population=24, generations=25, seed=1,
            )
            return res.feasible, res.allocation
        raise ValueError(f"unknown heuristic {name!r}")
