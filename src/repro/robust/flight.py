"""A JSONL flight recorder for long-lived solve components.

The fabric (:mod:`repro.fabric.coordinator`) introduced the pattern: an
append-only ``*.jsonl`` event log written with one ``write`` call per
record, so concurrent writers (threads, worker processes) interleave
whole lines and a crash never leaves a half-parsable file worse than a
torn last line.  This module lifts the pattern into :mod:`repro.robust`
so the supervisor's stage transitions and the allocation server's
request lifecycle land in the same kind of log CI can upload.

A recorder must *never* take its host down: every filesystem failure is
swallowed (the events are observability, not state).  That includes
resource exhaustion -- ``flight.append`` is a named chaos data site
(torn/corrupt/ENOSPC bytes degrade to a torn last line at worst), and
each append is charged to the resource governor's ``flight`` category,
whose quota reclaim *rotates* the log (truncate to a marker) rather
than failing the run.
"""

from __future__ import annotations

import json
import os
import time

from repro import governor as _governor
from repro.chaos import ChaosDiskFull, chaos_data

__all__ = ["FlightRecorder", "read_events"]


class FlightRecorder:
    """Append-only JSONL event log (one object per line, crash-tolerant).

    ``actor`` tags every record (e.g. ``supervisor`` or ``serve``), so
    several components can share one log file and still be told apart.
    """

    def __init__(self, path: str, actor: str = "repro"):
        self.path = path
        self.actor = actor

    def log(self, event: str, **extra) -> None:
        record = {
            "ts": round(time.time(), 4),
            "actor": self.actor,
            "pid": os.getpid(),
            "event": event,
        }
        record.update(extra)
        try:
            line = json.dumps(record, default=str) + "\n"
        except (TypeError, ValueError):  # unserializable extra: degrade
            record = {"ts": record["ts"], "actor": self.actor,
                      "pid": record["pid"], "event": event}
            line = json.dumps(record) + "\n"
        blob = line.encode("utf-8")
        try:
            _governor.charge("flight", len(blob), path=self.path)
            data, _damage = chaos_data("flight.append", blob)
        except ChaosDiskFull as exc:
            data = exc.partial  # the prefix that reached the disk
        except OSError:
            return  # quota rejection / io-error: drop the event
        if not data:
            return
        try:
            with open(self.path, "ab") as fh:
                fh.write(data)
        except OSError:
            pass  # observability must never take the run down


def read_events(path: str) -> list[dict]:
    """Parse a flight-recorder log; damaged/torn lines are skipped (a
    crash mid-append tears at most the last line)."""
    out: list[dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict):
                    out.append(rec)
    except OSError:
        return []
    return out
