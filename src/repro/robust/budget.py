"""Cooperative solve budgets (wall time, conflicts, decisions).

A :class:`Budget` is threaded from the public entry points (``Allocator``,
``solve_portfolio``, the CLI) down into the CDCL search loop of
:class:`repro.sat.solver.Solver`.  The search charges the budget on every
conflict and decision and periodically re-checks the wall clock; when the
budget is exhausted the engine backtracks to level 0 (so it stays usable)
and raises :class:`BudgetExpired`.  Callers report the interrupted probe
as UNKNOWN instead of hanging -- the anytime/limit discipline exact
solvers need before they can be served at production scale.

One budget spans a whole optimization run: all binary-search probes (and
all escalation stages of :class:`repro.robust.supervisor.SolveSupervisor`)
draw from the same pool, so the wall-clock promise made to the caller
holds end-to-end, not per probe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Budget", "BudgetExpired"]


class BudgetExpired(RuntimeError):
    """Raised by the search loop when its :class:`Budget` runs out.

    The solver that raises it has already backtracked to decision level 0
    and remains usable (learnt clauses are kept); only the *answer* of the
    interrupted call is unknown.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class Budget:
    """Cooperative resource budget for one solve/optimize run.

    Any combination of limits may be set; ``None`` means unlimited.  The
    wall clock starts on the first :meth:`start` call (the first solver
    invocation), so constructing a budget ahead of time costs nothing.

    ``check_every`` bounds how many conflicts/decisions may pass between
    wall-clock checks -- the granularity of interruption.  Conflict and
    decision limits are exact.
    """

    wall_seconds: float | None = None
    max_conflicts: int | None = None
    max_decisions: int | None = None
    check_every: int = 64

    conflicts_used: int = field(default=0, init=False)
    decisions_used: int = field(default=0, init=False)
    expired_reason: str | None = field(default=None, init=False)
    _deadline: float | None = field(default=None, init=False, repr=False)
    _tick: int = field(default=0, init=False, repr=False)

    def start(self) -> None:
        """Arm the wall clock (idempotent; later calls keep the deadline)."""
        if self._deadline is None and self.wall_seconds is not None:
            self._deadline = time.monotonic() + self.wall_seconds

    def remaining_seconds(self) -> float | None:
        """Seconds left on the wall clock (``None`` when unlimited)."""
        if self.wall_seconds is None:
            return None
        if self._deadline is None:
            return self.wall_seconds
        return max(0.0, self._deadline - time.monotonic())

    def step(self, conflicts: int = 0, decisions: int = 0) -> bool:
        """Charge usage; return True when the budget just expired.

        Called from the CDCL inner loop -- kept allocation-free and cheap.
        Once expired it keeps returning True.
        """
        if self.expired_reason is not None:
            return True
        self.conflicts_used += conflicts
        self.decisions_used += decisions
        if (
            self.max_conflicts is not None
            and self.conflicts_used >= self.max_conflicts
        ):
            self.expired_reason = (
                f"conflict budget exhausted "
                f"({self.conflicts_used}/{self.max_conflicts})"
            )
            return True
        if (
            self.max_decisions is not None
            and self.decisions_used >= self.max_decisions
        ):
            self.expired_reason = (
                f"decision budget exhausted "
                f"({self.decisions_used}/{self.max_decisions})"
            )
            return True
        if self._deadline is not None:
            self._tick += 1
            if self._tick >= self.check_every:
                self._tick = 0
                if time.monotonic() >= self._deadline:
                    self.expired_reason = (
                        f"wall-clock budget exhausted "
                        f"({self.wall_seconds:g}s)"
                    )
                    return True
        return False

    def expired(self) -> bool:
        """Whether the budget is exhausted (also re-checks the clock)."""
        if self.expired_reason is not None:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.expired_reason = (
                f"wall-clock budget exhausted ({self.wall_seconds:g}s)"
            )
            return True
        return False

    def raise_if_expired(self) -> None:
        if self.expired():
            raise BudgetExpired(self.expired_reason or "budget exhausted")
