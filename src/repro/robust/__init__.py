"""Solve supervision: budgets, checkpoints, watchdogs, degradation.

The SOLVE/BIN_SEARCH loop (paper section 5.2) and the tables-1-4 sweeps
are long-running searches over NP-hard instances; serving them at
production scale demands that every solve is *bounded*, *resumable*, and
*degradable*.  This package supplies the supervision layer:

- :mod:`repro.robust.budget` -- cooperative :class:`Budget` limits
  (wall time / conflicts / decisions) honored inside the CDCL search
  loop, so a single probe is interruptible mid-search,
- :mod:`repro.robust.checkpoint` -- JSON checkpoint/resume state for
  binary searches (:class:`SearchCheckpoint`) and benchmark sweeps
  (:class:`SweepCheckpoint`),
- :mod:`repro.robust.supervisor` -- the :class:`SolveSupervisor`
  escalation chain (incremental -> rebuild -> heuristic) that always
  returns a usable allocation with an honest status,
- :mod:`repro.robust.faults` -- deterministic fault injection (worker
  hangs, crashes, mid-cell errors) for testing all of the above.

The sweep watchdog itself lives in :func:`repro.parallel.run_sweep`
(per-cell timeouts, hung-worker kill, bounded retry); see
``docs/ROBUSTNESS.md`` for the full picture.
"""

from repro.robust.budget import Budget, BudgetExpired
from repro.robust.checkpoint import (
    CheckpointCorrupt,
    CorruptArtifact,
    SearchCheckpoint,
    SweepCheckpoint,
)
from repro.robust.flight import FlightRecorder, read_events
from repro.robust.faults import (
    FAULT_EXIT_CODE,
    PROOF_CORRUPTIONS,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    corrupt_allocation,
    corrupt_proof_line,
)
from repro.robust.supervisor import (
    SolveSupervisor,
    StageReport,
    SupervisedResult,
)

__all__ = [
    "Budget",
    "BudgetExpired",
    "SearchCheckpoint",
    "SweepCheckpoint",
    "CheckpointCorrupt",
    "CorruptArtifact",
    "SolveSupervisor",
    "StageReport",
    "SupervisedResult",
    "FlightRecorder",
    "read_events",
    "FaultPlan",
    "FaultInjector",
    "FaultInjected",
    "FAULT_EXIT_CODE",
    "PROOF_CORRUPTIONS",
    "corrupt_proof_line",
    "corrupt_allocation",
]
