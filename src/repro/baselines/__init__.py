"""Heuristic and exhaustive baseline allocators.

The paper's headline experiment (table 1) compares against the simulated
annealing allocator of Tindell/Burns/Wellings [5], which found TRT =
8.7 ms where the SAT method proves the optimum 8.55 ms.  This package
provides:

- :mod:`repro.baselines.common` -- deriving a complete
  :class:`repro.analysis.Allocation` (priorities, routes, slot table)
  from a bare task->ECU map, shared by all baselines,
- :mod:`repro.baselines.annealing` -- simulated annealing in the style
  of [5],
- :mod:`repro.baselines.branch_bound` -- exhaustive branch-and-bound
  (optimal; used to cross-validate the SAT route on small instances),
- :mod:`repro.baselines.greedy` -- first-fit-decreasing utilization
  balancing.
"""

from repro.baselines.annealing import AnnealingResult, simulated_annealing
from repro.baselines.branch_bound import branch_and_bound
from repro.baselines.common import derive_allocation, evaluate_cost
from repro.baselines.genetic import GeneticResult, genetic_allocator
from repro.baselines.greedy import greedy_first_fit

__all__ = [
    "simulated_annealing",
    "AnnealingResult",
    "branch_and_bound",
    "greedy_first_fit",
    "genetic_allocator",
    "GeneticResult",
    "derive_allocation",
    "evaluate_cost",
]
