"""Exhaustive branch-and-bound allocator.

Optimal like the SAT route (on the same derived-structure search space:
deadline-monotonic priorities, shortest-path routes, minimal slot
tables), but explores task->ECU maps directly.  Used to cross-validate
the SAT optimizer on small instances and as the classic complete-search
baseline the paper cites ([10]).

Pruning:

- partial placements whose per-ECU utilization already exceeds 1,
- separation violations,
- a lower bound on the objective (current slot table cost) that already
  matches or exceeds the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import check_allocation
from repro.baselines.common import derive_allocation, evaluate_cost
from repro.model.architecture import Architecture
from repro.model.task import TaskSet

__all__ = ["BranchBoundResult", "branch_and_bound"]


@dataclass
class BranchBoundResult:
    feasible: bool
    cost: int | None
    allocation: Allocation | None
    explored: int


def branch_and_bound(
    tasks: TaskSet,
    arch: Architecture,
    objective: str = "trt",
    medium: str | None = None,
    node_limit: int = 1_000_000,
) -> BranchBoundResult:
    """Optimal allocation by exhaustive search with pruning.

    Raises RuntimeError when ``node_limit`` is exceeded (use the SAT
    route for anything beyond toy sizes).
    """
    names = tasks.names()
    # Branch on most-constrained tasks first.
    names = sorted(
        names, key=lambda n: len(tasks[n].candidate_ecus(arch))
    )
    candidates = {n: tasks[n].candidate_ecus(arch) for n in names}
    for n, c in candidates.items():
        if not c:
            raise ValueError(f"task {n} has no candidate ECU")

    best_cost: int | None = None
    best_alloc: Allocation | None = None
    explored = 0
    util: dict[str, float] = {}
    placement: dict[str, str] = {}

    def dfs(idx: int) -> None:
        nonlocal best_cost, best_alloc, explored
        explored += 1
        if explored > node_limit:
            raise RuntimeError("branch-and-bound node limit exceeded")
        if idx == len(names):
            alloc = derive_allocation(tasks, arch, placement)
            if alloc is None:
                return
            report = check_allocation(tasks, arch, alloc)
            if not report.schedulable:
                return
            cost = evaluate_cost(tasks, arch, alloc, objective, medium)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_alloc = alloc
            return
        name = names[idx]
        task = tasks[name]
        for ecu in candidates[name]:
            # Separation pruning.
            if any(
                placement.get(other) == ecu
                for other in task.separated_from
            ):
                continue
            # Utilization pruning.
            u = task.wcet[ecu] / task.period
            if util.get(ecu, 0.0) + u > 1.0:
                continue
            placement[name] = ecu
            util[ecu] = util.get(ecu, 0.0) + u
            dfs(idx + 1)
            util[ecu] -= u
            del placement[name]

    dfs(0)
    return BranchBoundResult(
        feasible=best_cost is not None,
        cost=best_cost,
        allocation=best_alloc,
        explored=explored,
    )
