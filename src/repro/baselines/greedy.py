"""Greedy first-fit-decreasing allocator.

The simplest baseline: sort tasks by decreasing utilization, place each
on the candidate ECU with the lowest current utilization that keeps the
partial system schedulable.  Fast, frequently feasible on slack systems,
and a useful warm start / sanity bar for the other methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import check_allocation
from repro.baselines.common import derive_allocation
from repro.model.architecture import Architecture
from repro.model.task import TaskSet

__all__ = ["GreedyResult", "greedy_first_fit"]


@dataclass
class GreedyResult:
    feasible: bool
    allocation: Allocation | None
    placement: dict[str, str]


def greedy_first_fit(tasks: TaskSet, arch: Architecture) -> GreedyResult:
    """First-fit decreasing by utilization with schedulability look-back.

    Returns an infeasible result (with the partial placement) when some
    task cannot be placed anywhere without breaking the analysis.
    """
    order = sorted(
        tasks.names(),
        key=lambda n: -min(
            tasks[n].wcet[p] for p in tasks[n].candidate_ecus(arch)
        )
        / tasks[n].period,
    )
    placement: dict[str, str] = {}
    util: dict[str, float] = {}
    placed = TaskSet(
        [tasks[n] for n in tasks.names()], name="greedy-probe"
    )
    for name in order:
        task = tasks[name]
        options = sorted(
            task.candidate_ecus(arch), key=lambda p: util.get(p, 0.0)
        )
        chosen = None
        for ecu in options:
            if any(
                placement.get(o) == ecu for o in task.separated_from
            ):
                continue
            u = task.wcet[ecu] / task.period
            if util.get(ecu, 0.0) + u > 1.0:
                continue
            trial = dict(placement)
            trial[name] = ecu
            sub = placed.subset(list(trial), name="greedy-trial")
            alloc = derive_allocation(sub, arch, trial)
            if alloc is None:
                continue
            if check_allocation(sub, arch, alloc).schedulable:
                chosen = ecu
                break
        if chosen is None:
            return GreedyResult(False, None, placement)
        placement[name] = chosen
        util[chosen] = util.get(chosen, 0.0) + task.wcet[chosen] / task.period
    alloc = derive_allocation(tasks, arch, placement)
    if alloc is None:
        return GreedyResult(False, None, placement)
    feas = check_allocation(tasks, arch, alloc).schedulable
    return GreedyResult(feas, alloc if feas else None, placement)
