"""Simulated annealing allocator in the style of Tindell et al. [5].

State: a task -> ECU map.  Neighbour: move one random task to another
candidate ECU.  Energy: ``PENALTY_WEIGHT * #violations + objective``, so
the walk is drawn first toward feasibility, then toward low cost --
the classic formulation of [5], which the paper's table 1 compares
against (SA found TRT = 8.7 ms; the SAT method proves 8.55 ms optimal).

The implementation is deliberately budgeted: with a finite iteration
budget SA typically lands on a feasible but sub-optimal solution on tight
instances, reproducing the paper's observation that "simulated annealing
in this case did not find the optimal solution".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import check_allocation
from repro.baselines.common import derive_allocation, evaluate_cost, penalty
from repro.model.architecture import Architecture
from repro.model.task import TaskSet

__all__ = ["AnnealingResult", "simulated_annealing"]

#: Energy weight of one constraint violation; dominates any objective.
PENALTY_WEIGHT = 1_000_000


@dataclass
class AnnealingResult:
    """Best state found by the annealing walk."""

    feasible: bool
    cost: int | None
    allocation: Allocation | None
    iterations: int
    accepted: int
    energy_trace: list[int]


def _energy(
    tasks: TaskSet,
    arch: Architecture,
    placement: dict[str, str],
    objective: str,
    medium: str | None,
) -> tuple[int, Allocation | None, bool]:
    alloc = derive_allocation(tasks, arch, placement)
    if alloc is None:
        return PENALTY_WEIGHT * 100, None, False
    report = check_allocation(tasks, arch, alloc)
    cost = evaluate_cost(tasks, arch, alloc, objective, medium)
    return PENALTY_WEIGHT * penalty(report) + cost, alloc, report.schedulable


def simulated_annealing(
    tasks: TaskSet,
    arch: Architecture,
    objective: str = "trt",
    medium: str | None = None,
    iterations: int = 2000,
    start_temp: float = 500.0,
    cooling: float = 0.995,
    seed: int = 0,
) -> AnnealingResult:
    """Run the annealing walk; see the module docstring.

    ``objective``/``medium`` as in
    :func:`repro.baselines.common.evaluate_cost`.  Deterministic for a
    fixed ``seed``.
    """
    rng = random.Random(seed)
    names = tasks.names()
    candidates = {
        t.name: t.candidate_ecus(arch) for t in tasks
    }
    for n, c in candidates.items():
        if not c:
            raise ValueError(f"task {n} has no candidate ECU")
    placement = {n: rng.choice(candidates[n]) for n in names}
    energy, alloc, feas = _energy(tasks, arch, placement, objective, medium)

    best_energy = energy
    best_alloc = alloc if feas else None
    best_feasible = feas
    accepted = 0
    trace = [energy]
    temp = start_temp

    for _ in range(iterations):
        name = rng.choice(names)
        options = [p for p in candidates[name] if p != placement[name]]
        if not options:
            continue
        old = placement[name]
        placement[name] = rng.choice(options)
        new_energy, new_alloc, new_feas = _energy(
            tasks, arch, placement, objective, medium
        )
        delta = new_energy - energy
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-9)):
            energy = new_energy
            accepted += 1
            if new_feas and (
                not best_feasible or new_energy < best_energy
            ):
                best_energy = new_energy
                best_alloc = new_alloc
                best_feasible = True
            elif not best_feasible and new_energy < best_energy:
                best_energy = new_energy
        else:
            placement[name] = old
        temp *= cooling
        trace.append(energy)

    cost = None
    if best_feasible and best_alloc is not None:
        cost = evaluate_cost(tasks, arch, best_alloc, objective, medium)
    return AnnealingResult(
        feasible=best_feasible,
        cost=cost,
        allocation=best_alloc,
        iterations=iterations,
        accepted=accepted,
        energy_trace=trace,
    )
