"""Shared machinery of the heuristic baselines.

A heuristic explores the space of task->ECU maps; everything else is
derived deterministically:

- priorities: deadline-monotonic with name tie-breaks,
- message routes: BFS shortest path in the media graph between the
  sender's and receiver's ECUs (empty when co-located),
- token-ring slot table: each ECU's slot is the smallest that fits every
  frame it injects (plus slot overhead), bounded below by ``min_slot``,
- local deadlines: the checker's proportional split.

``evaluate_cost`` mirrors the optimizer's objectives on concrete
allocations so heuristic and SAT results are directly comparable.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.allocation import Allocation, MsgRef
from repro.analysis.feasibility import (
    FeasibilityReport,
    check_allocation,
    sending_ecu_on,
)
from repro.analysis.rta import deadline_monotonic_order
from repro.model.architecture import Architecture, MediumKind
from repro.model.task import TaskSet

__all__ = ["route_between", "derive_allocation", "evaluate_cost", "penalty"]


def route_between(
    arch: Architecture, src: str, dst: str
) -> tuple[str, ...] | None:
    """Shortest valid media path from ECU ``src`` to ECU ``dst``.

    Respects the v(h) endpoint conditions: the sender must not be the
    gateway into the second medium, nor the receiver the gateway from the
    second-to-last.  Returns () for co-located endpoints, None when no
    path exists.
    """
    if src == dst:
        return ()
    direct = arch.common_medium(src, dst)
    if direct is not None:
        return (direct,)
    adj = arch.media_adjacency()
    starts = arch.media_of_ecu(src)
    targets = set(arch.media_of_ecu(dst))
    best: tuple[str, ...] | None = None
    for start in starts:
        queue: deque[tuple[str, ...]] = deque([(start,)])
        seen = {start}
        while queue:
            path = queue.popleft()
            if path[-1] in targets and len(path) >= 2:
                if _endpoints_valid(arch, path, src, dst):
                    if best is None or len(path) < len(best):
                        best = path
                    break
            for nxt in adj[path[-1]]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(path + (nxt,))
    return best


def _endpoints_valid(
    arch: Architecture, path: tuple[str, ...], src: str, dst: str
) -> bool:
    gw_first = arch.gateway_between(path[0], path[1])
    gw_last = arch.gateway_between(path[-2], path[-1])
    return src != gw_first and dst != gw_last


def derive_allocation(
    tasks: TaskSet, arch: Architecture, task_ecu: dict[str, str]
) -> Allocation | None:
    """Complete a bare placement into a full Allocation, or None when a
    message has no valid route."""
    prio = deadline_monotonic_order(list(tasks))
    message_path: dict[MsgRef, tuple[str, ...]] = {}
    for t in tasks:
        for i, m in enumerate(t.messages):
            route = route_between(
                arch, task_ecu[t.name], task_ecu[m.target]
            )
            if route is None:
                return None
            message_path[MsgRef(t.name, i)] = route
    slot_ticks: dict[tuple[str, str], int] = {}
    for kname, k in arch.media.items():
        if k.kind is not MediumKind.TOKEN_RING:
            continue
        need: dict[str, int] = {p: k.min_slot for p in k.ecus}
        for ref, path in message_path.items():
            if kname not in path:
                continue
            hop = path.index(kname)
            task, msg = ref.resolve(tasks)
            sender = sending_ecu_on(arch, path, task_ecu[task.name], hop)
            rho = k.transmission_ticks(msg.size_bits)
            need[sender] = max(need[sender], rho + k.slot_overhead)
        for p, ticks in need.items():
            slot_ticks[(kname, p)] = ticks
    return Allocation(
        task_ecu=dict(task_ecu),
        task_prio=prio,
        message_path=message_path,
        slot_ticks=slot_ticks,
    )


def evaluate_cost(
    tasks: TaskSet,
    arch: Architecture,
    alloc: Allocation,
    objective: str,
    medium: str | None = None,
) -> int:
    """Objective value of a concrete allocation.

    ``objective`` in {"trt", "sum_trt", "can_util", "sum_resp"}; "trt"
    and "can_util" need ``medium``.  "can_util" is in per-mille, matching
    :class:`repro.core.objectives.MinimizeCanUtilization`.
    """
    if objective == "trt":
        assert medium is not None
        return alloc.trt(arch, medium)
    if objective == "sum_trt":
        return sum(
            alloc.trt(arch, k)
            for k, m in arch.media.items()
            if m.kind is MediumKind.TOKEN_RING
        )
    if objective == "can_util":
        assert medium is not None
        k = arch.media[medium]
        total = 0
        for ref in alloc.messages_on(medium):
            task, msg = ref.resolve(tasks)
            rho = k.transmission_ticks(msg.size_bits)
            total += -((-rho * 1000) // task.period)
        return total
    if objective == "sum_resp":
        rep = check_allocation(tasks, arch, alloc)
        return sum(
            r if r is not None else 10**9
            for r in rep.task_response.values()
        )
    raise ValueError(f"unknown objective {objective!r}")


def penalty(report: FeasibilityReport) -> int:
    """Scalar infeasibility measure used as the annealing penalty term:
    the number of violated constraints (0 when schedulable)."""
    return len(report.problems)
