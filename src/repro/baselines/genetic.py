"""Genetic-algorithm allocator (the paper's related-work contrast [7]).

Blickle/Teich/Thiele-style system-level synthesis uses evolutionary
algorithms for allocation; the paper positions its SAT method against
such heuristics.  This implementation evolves task->ECU maps:

- individual: placement vector over the candidate ECUs of each task,
- fitness: (#constraint violations, objective) lexicographically,
- selection: tournament of 3,
- crossover: uniform per-gene,
- mutation: re-draw a gene from the task's candidates,
- elitism: the best individual always survives.

Like the annealer it derives priorities/routes/slots deterministically
(:mod:`repro.baselines.common`), so its results are directly comparable
with the SAT optimum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import check_allocation
from repro.baselines.common import derive_allocation, evaluate_cost, penalty
from repro.model.architecture import Architecture
from repro.model.task import TaskSet

__all__ = ["GeneticResult", "genetic_allocator"]


@dataclass
class GeneticResult:
    feasible: bool
    cost: int | None
    allocation: Allocation | None
    generations: int
    evaluations: int


def genetic_allocator(
    tasks: TaskSet,
    arch: Architecture,
    objective: str = "trt",
    medium: str | None = None,
    population: int = 30,
    generations: int = 40,
    mutation_rate: float = 0.15,
    seed: int = 0,
) -> GeneticResult:
    """Evolve an allocation; see the module docstring."""
    rng = random.Random(seed)
    names = tasks.names()
    candidates = {t.name: t.candidate_ecus(arch) for t in tasks}
    for n, c in candidates.items():
        if not c:
            raise ValueError(f"task {n} has no candidate ECU")

    evaluations = 0

    def evaluate(genome: list[str]):
        nonlocal evaluations
        evaluations += 1
        placement = dict(zip(names, genome))
        alloc = derive_allocation(tasks, arch, placement)
        if alloc is None:
            return (10**9, 10**9, None)
        report = check_allocation(tasks, arch, alloc)
        cost = evaluate_cost(tasks, arch, alloc, objective, medium)
        return (penalty(report), cost, alloc)

    def random_genome() -> list[str]:
        return [rng.choice(candidates[n]) for n in names]

    pop = [random_genome() for _ in range(population)]
    scored = [(evaluate(g), g) for g in pop]
    scored.sort(key=lambda sg: sg[0][:2])

    for _gen in range(generations):
        nxt = [scored[0][1]]  # elitism
        while len(nxt) < population:
            def pick():
                contenders = rng.sample(scored, min(3, len(scored)))
                return min(contenders, key=lambda sg: sg[0][:2])[1]

            mother, father = pick(), pick()
            child = [
                m if rng.random() < 0.5 else f
                for m, f in zip(mother, father)
            ]
            for i, n in enumerate(names):
                if rng.random() < mutation_rate:
                    child[i] = rng.choice(candidates[n])
            nxt.append(child)
        scored = [(evaluate(g), g) for g in nxt]
        scored.sort(key=lambda sg: sg[0][:2])
        if scored[0][0][0] == 0 and _gen > generations // 2:
            # Feasible and past the halfway mark: allow early stop when
            # the elite has not changed class.
            pass

    best_score, _ = scored[0]
    violations, cost, alloc = best_score
    feasible = violations == 0 and alloc is not None
    return GeneticResult(
        feasible=feasible,
        cost=cost if feasible else None,
        allocation=alloc if feasible else None,
        generations=generations,
        evaluations=evaluations,
    )
