"""Path closures on hierarchical topologies (paper section 4, figure 1).

A hierarchical architecture is viewed as a graph whose nodes are
communication media and whose arcs are gateway ECUs.  A **path closure**
``ph`` is the set of all prefixes of one maximal simple path in that
graph: choosing a closure for a message fixes the *order* in which media
may be used, while the disjunction over its sub-paths (eq. 14) lets the
optimizer pick how far along the path the message actually travels.

``ph0``, the empty closure, stands for intra-ECU communication (sender
and receiver on the same ECU: no medium used at all).

For the figure 1 topology (k1={p1,p2,p3}, k2={p2,p4}, k3={p3,p5}) this
module reproduces exactly the closures printed in the paper::

    ph0 = {""}
    ph1 = {"k1", "k1 k2"}
    ph2 = {"k1", "k1 k3"}
    ph3 = {"k2", "k2 k1", "k2 k1 k3"}
    ph4 = {"k3", "k3 k1", "k3 k1 k2"}
"""

from __future__ import annotations

from repro.model.architecture import Architecture

__all__ = ["PathClosure", "enumerate_path_closures"]


class PathClosure:
    """All prefixes of one maximal simple media path.

    ``longest`` is the maximal path (a tuple of medium names, possibly
    empty for ph0); ``sub_paths`` lists every non-empty prefix (or the
    single empty path for ph0).
    """

    __slots__ = ("index", "longest")

    def __init__(self, index: int, longest: tuple[str, ...]):
        self.index = index
        self.longest = tuple(longest)

    @property
    def sub_paths(self) -> list[tuple[str, ...]]:
        """Non-empty prefixes of the longest path; ``[()]`` for ph0."""
        if not self.longest:
            return [()]
        return [self.longest[: i + 1] for i in range(len(self.longest))]

    @property
    def start(self) -> str | None:
        """First medium of the closure (None for ph0)."""
        return self.longest[0] if self.longest else None

    def __len__(self) -> int:
        return len(self.longest)

    def __eq__(self, other) -> bool:
        return isinstance(other, PathClosure) and self.longest == other.longest

    def __hash__(self) -> int:
        return hash(self.longest)

    def __repr__(self) -> str:
        inner = ", ".join(
            '"' + " ".join(p) + '"' for p in self.sub_paths
        )
        return f"ph{self.index} = {{{inner}}}"


def enumerate_path_closures(
    arch: Architecture, max_hops: int | None = None
) -> list[PathClosure]:
    """All path closures of an architecture's media graph.

    Returns ``ph0`` (the empty closure) followed by one closure per
    maximal simple path, in deterministic order (start medium declaration
    order, then lexicographic extension order).  ``max_hops`` truncates
    paths to at most that many media (bounding encoding size on large
    topologies); truncated paths count as maximal.

    Cycles in the media graph are handled by the simple-path restriction,
    matching the paper's "possibly with cycles ... we allow arbitrary
    networks" remark.
    """
    adj = arch.media_adjacency()
    closures: list[PathClosure] = [PathClosure(0, ())]
    seen: set[tuple[str, ...]] = set()

    def extend(path: list[str]) -> None:
        last = path[-1]
        truncated = max_hops is not None and len(path) >= max_hops
        nexts = (
            []
            if truncated
            else [k for k in adj[last] if k not in path]
        )
        if not nexts:
            key = tuple(path)
            if key not in seen:
                seen.add(key)
                closures.append(PathClosure(len(closures), key))
            return
        for k in nexts:
            extend(path + [k])

    for start in arch.medium_names():
        extend([start])
    return closures


def closures_by_endpoints(
    arch: Architecture, closures: list[PathClosure]
) -> dict[tuple[str, str], list[tuple[PathClosure, tuple[str, ...]]]]:
    """Index: (sender ECU, receiver ECU) -> [(closure, sub-path)] of every
    sub-path whose endpoint condition v(h) (section 4) admits the pair.

    Used by the feasibility checker and by tests as an oracle for the
    encoder's path constraints.
    """
    out: dict[tuple[str, str], list[tuple[PathClosure, tuple[str, ...]]]] = {}
    for ph in closures:
        for h in ph.sub_paths:
            for ps, pr in _endpoint_pairs(arch, h):
                out.setdefault((ps, pr), []).append((ph, h))
    return out


def _endpoint_pairs(arch: Architecture, h: tuple[str, ...]):
    """All (sender ECU, receiver ECU) pairs admitted by v(h) for path h."""
    if not h:
        # Intra-ECU: any ECU paired with itself.
        for p in arch.ecu_names():
            yield (p, p)
        return
    if len(h) == 1:
        k = arch.media[h[0]]
        for ps in k.ecus:
            for pr in k.ecus:
                if ps != pr:
                    yield (ps, pr)
        return
    first, second = arch.media[h[0]], arch.media[h[1]]
    last, second_last = arch.media[h[-1]], arch.media[h[-2]]
    first_ok = set(first.ecus) - (set(first.ecus) & set(second.ecus))
    last_ok = set(last.ecus) - (set(last.ecus) & set(second_last.ecus))
    for ps in sorted(first_ok):
        for pr in sorted(last_ok):
            yield (ps, pr)
