"""System model: architectures, media, tasks and messages (paper section 2).

An architecture is a tuple ``A = (P, K, kappa)``: a set of ECUs ``P``, a
set of communication media ``K`` (each medium is the subset of ECUs it
connects), and per-medium parameters ``kappa`` (access method, transfer
rate, frame overheads, slot table).  The application is a task set ``T``
of tuples ``tau_i = (t_i, c_i, gamma_i, pi_i, delta_i, d_i)``.

All times are integer **microsecond ticks**; the reporting layer converts
to the milliseconds the paper's tables use.
"""

from repro.model.architecture import (
    CAN,
    TOKEN_RING,
    Architecture,
    Ecu,
    Medium,
    MediumKind,
)
from repro.model.paths import PathClosure, enumerate_path_closures
from repro.model.task import Message, Task, TaskSet

__all__ = [
    "Architecture",
    "Ecu",
    "Medium",
    "MediumKind",
    "CAN",
    "TOKEN_RING",
    "Task",
    "Message",
    "TaskSet",
    "PathClosure",
    "enumerate_path_closures",
]
