"""Architecture model ``A = (P, K, kappa)``.

ECUs are processing nodes; a medium connects a subset of ECUs.  Two kinds
of media are modelled, matching the paper:

- **TDMA / token-ring** (``MediumKind.TOKEN_RING``): bandwidth divided
  into per-ECU slots; a message waits for its sender's slot each round
  (response-time eq. 3).  The Token Rotation Time (TRT) -- the TDMA round
  length ``Lambda`` -- is the optimization objective of the paper's
  experiments on [5].
- **CAN-style priority bus** (``MediumKind.CAN``): messages arbitrate by
  unique priorities (response-time eq. 2).

An ECU that belongs to two or more media is a **gateway**; messages may
cross it (at a service cost), and some experiments forbid gateways from
hosting application tasks (architectures A and B of figure 2).

Times are integer microsecond ticks throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["MediumKind", "TOKEN_RING", "CAN", "Ecu", "Medium", "Architecture"]


class MediumKind(Enum):
    """Access method of a communication medium."""

    TOKEN_RING = "token-ring"
    CAN = "can"


TOKEN_RING = MediumKind.TOKEN_RING
CAN = MediumKind.CAN


@dataclass(frozen=True)
class Ecu:
    """An embedded control unit.

    ``speed`` scales WCETs built from a nominal per-task execution time
    (heterogeneity knob); ``allow_tasks`` is cleared for pure gateway
    nodes (architectures A/B of fig. 2 place no application tasks on
    gateways); ``memory`` is the ECU's RAM/flash capacity in abstract
    units (None = unbounded) -- the "memory consumption" requirement
    class the paper inherits from [5].
    """

    name: str
    speed: float = 1.0
    allow_tasks: bool = True
    memory: int | None = None

    def __post_init__(self):
        if self.speed <= 0:
            raise ValueError(f"ECU {self.name}: speed must be positive")
        if self.memory is not None and self.memory < 0:
            raise ValueError(f"ECU {self.name}: memory must be >= 0")


@dataclass
class Medium:
    """A communication medium ``k = {p_1, ..., p_j}`` with parameters
    ``kappa``.

    ``bit_rate`` is in bits per second; ``frame_overhead_bits`` is the
    per-frame protocol overhead (headers, stuffing reserve); for
    token-ring media ``slot_overhead`` (ticks) is the fixed per-slot cost
    added to every ECU slot and ``min_slot`` the smallest admissible slot
    length.  ``tick_us`` sets the duration of one model tick in
    microseconds (workloads use coarser ticks to keep bit-blasted
    variable widths small).
    """

    name: str
    kind: MediumKind
    ecus: tuple[str, ...]
    bit_rate: int = 1_000_000
    frame_overhead_bits: int = 47          # CAN 2.0A worst-case overhead
    slot_overhead: int = 20                # ticks per token-ring slot
    min_slot: int = 50                     # ticks
    gateway_service: int = 100             # ticks per gateway crossing
    tick_us: int = 1                       # microseconds per model tick
    #: Account for the non-preemptive blocking of one lower-priority
    #: frame in CAN response times (the standard Tindell CAN analysis;
    #: the paper's eq. 2 is the False case).
    nonpreemptive_blocking: bool = False

    def __post_init__(self):
        if len(set(self.ecus)) != len(self.ecus):
            raise ValueError(f"medium {self.name}: duplicate ECUs")
        if len(self.ecus) < 2:
            raise ValueError(f"medium {self.name}: needs >= 2 ECUs")
        if self.bit_rate <= 0:
            raise ValueError(f"medium {self.name}: bit_rate must be positive")
        if self.tick_us <= 0:
            raise ValueError(f"medium {self.name}: tick_us must be positive")
        self.ecus = tuple(self.ecus)

    def transmission_ticks(self, size_bits: int) -> int:
        """Worst-case wire time (ticks) of one message of ``size_bits``
        payload, including protocol overhead -- the rho of eq. 2.
        Rounded up to whole ticks (safe over-approximation)."""
        bits = size_bits + self.frame_overhead_bits
        return -(-bits * 1_000_000 // (self.bit_rate * self.tick_us))

    def connects(self, ecu: str) -> bool:
        """True when ``ecu`` is attached to this medium."""
        return ecu in self.ecus


class Architecture:
    """The hardware platform: ECUs + media + derived topology facts.

    Validates the paper's structural assumption "only one gateway between
    two media": any pair of media may share at most one ECU.
    """

    def __init__(self, ecus: list[Ecu], media: list[Medium]):
        names = [e.name for e in ecus]
        if len(set(names)) != len(names):
            raise ValueError("duplicate ECU names")
        self.ecus: dict[str, Ecu] = {e.name: e for e in ecus}
        self.media: dict[str, Medium] = {}
        for m in media:
            if m.name in self.media:
                raise ValueError(f"duplicate medium name {m.name}")
            for p in m.ecus:
                if p not in self.ecus:
                    raise ValueError(
                        f"medium {m.name} references unknown ECU {p}"
                    )
            self.media[m.name] = m
        self._check_single_gateway()

    def _check_single_gateway(self) -> None:
        media = list(self.media.values())
        for i in range(len(media)):
            for j in range(i + 1, len(media)):
                shared = set(media[i].ecus) & set(media[j].ecus)
                if len(shared) > 1:
                    raise ValueError(
                        f"media {media[i].name} and {media[j].name} share "
                        f"{len(shared)} ECUs; the model allows at most one "
                        "gateway between two media"
                    )

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def ecu_names(self) -> list[str]:
        """ECU names in declaration order."""
        return list(self.ecus)

    def medium_names(self) -> list[str]:
        """Medium names in declaration order."""
        return list(self.media)

    def media_of_ecu(self, ecu: str) -> list[str]:
        """Names of all media the ECU is attached to."""
        return [m.name for m in self.media.values() if m.connects(ecu)]

    def gateways(self) -> list[str]:
        """ECUs attached to two or more media."""
        return [p for p in self.ecus if len(self.media_of_ecu(p)) >= 2]

    def gateway_between(self, k1: str, k2: str) -> str | None:
        """The unique gateway ECU linking two media, or None."""
        shared = set(self.media[k1].ecus) & set(self.media[k2].ecus)
        return next(iter(shared)) if shared else None

    def media_adjacency(self) -> dict[str, list[str]]:
        """Media graph: ``k1 -> [k2, ...]`` when a gateway links them."""
        names = list(self.media)
        adj: dict[str, list[str]] = {k: [] for k in names}
        for i, k1 in enumerate(names):
            for k2 in names[i + 1 :]:
                if self.gateway_between(k1, k2) is not None:
                    adj[k1].append(k2)
                    adj[k2].append(k1)
        return adj

    def task_capable_ecus(self) -> list[str]:
        """ECUs allowed to host application tasks."""
        return [p for p, e in self.ecus.items() if e.allow_tasks]

    def is_hierarchical(self) -> bool:
        """True when the platform has more than one medium."""
        return len(self.media) > 1

    def common_medium(self, p1: str, p2: str) -> str | None:
        """A medium connecting both ECUs directly, or None."""
        for m in self.media.values():
            if m.connects(p1) and m.connects(p2):
                return m.name
        return None

    def __repr__(self) -> str:
        return (
            f"Architecture({len(self.ecus)} ECUs, "
            f"{len(self.media)} media, gateways={self.gateways()})"
        )
