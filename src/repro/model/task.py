"""Task and message model (paper section 2).

A task is ``tau_i = (t_i, c_i, gamma_i, pi_i, delta_i, d_i)``:

- ``t_i``      activation period / minimal inter-arrival time (ticks),
- ``c_i``      worst-case execution time per ECU (``c_i : P -> N``),
- ``gamma_i``  messages the task sends at the end of each computation
               (target task, size in bits, deadline in ticks),
- ``pi_i``     the ECUs the task may be allocated on,
- ``delta_i``  tasks that must NOT share an ECU with ``tau_i``
               (redundant replicas in fault-tolerant designs),
- ``d_i``      the task's deadline (ticks).

Scheduling is preemptive fixed-priority; priorities are assigned
deadline-monotonically with ties broken by the optimizer (eqs. 9-10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.architecture import Architecture

__all__ = ["Message", "Task", "TaskSet"]


@dataclass(frozen=True)
class Message:
    """A message ``m = (target, size, deadline)`` in ``gamma_i``.

    ``deadline`` is the end-to-end transmission deadline Delta_m across
    all media the message crosses; the encoder splits it into per-medium
    local deadlines (section 4).
    """

    target: str
    size_bits: int
    deadline: int

    def __post_init__(self):
        if self.size_bits <= 0:
            raise ValueError("message size must be positive")
        if self.deadline <= 0:
            raise ValueError("message deadline must be positive")


@dataclass
class Task:
    """A periodic task with per-ECU WCETs.

    ``wcet`` maps ECU name -> execution time; ECUs missing from the map
    are implicitly forbidden (in addition to the explicit ``allowed``
    restriction ``pi_i``).  ``allowed=None`` means unrestricted.
    ``separated_from`` is ``delta_i``.
    """

    name: str
    period: int
    wcet: dict[str, int]
    deadline: int
    messages: tuple[Message, ...] = ()
    allowed: frozenset[str] | None = None
    separated_from: frozenset[str] = frozenset()
    release_jitter: int = 0
    memory: int = 0

    def __post_init__(self):
        if self.memory < 0:
            raise ValueError(f"task {self.name}: memory must be >= 0")
        if self.release_jitter < 0:
            raise ValueError(
                f"task {self.name}: release jitter must be >= 0"
            )
        if self.release_jitter >= self.deadline:
            raise ValueError(
                f"task {self.name}: release jitter must be below the "
                "deadline"
            )
        if self.period <= 0:
            raise ValueError(f"task {self.name}: period must be positive")
        if self.deadline <= 0:
            raise ValueError(f"task {self.name}: deadline must be positive")
        if self.deadline > self.period:
            raise ValueError(
                f"task {self.name}: constrained-deadline model requires "
                "deadline <= period"
            )
        if not self.wcet:
            raise ValueError(f"task {self.name}: empty WCET map")
        for p, c in self.wcet.items():
            if c <= 0:
                raise ValueError(f"task {self.name}: WCET on {p} must be > 0")
        self.messages = tuple(self.messages)
        if self.allowed is not None:
            self.allowed = frozenset(self.allowed)
        self.separated_from = frozenset(self.separated_from)

    def candidate_ecus(self, arch: Architecture) -> list[str]:
        """ECUs this task may run on: pi_i intersected with the WCET map
        domain and the architecture's task-capable ECUs."""
        out = []
        for p in arch.task_capable_ecus():
            if p not in self.wcet:
                continue
            if self.allowed is not None and p not in self.allowed:
                continue
            out.append(p)
        return out

    def utilization_on(self, ecu: str) -> float:
        """WCET/period on a specific ECU."""
        return self.wcet[ecu] / self.period


class TaskSet:
    """A named collection of tasks with cross-reference validation."""

    def __init__(self, tasks: list[Task], name: str = "taskset"):
        self.name = name
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names")
        self.tasks: dict[str, Task] = {t.name: t for t in tasks}
        self._validate()

    def _validate(self) -> None:
        for t in self.tasks.values():
            for m in t.messages:
                if m.target not in self.tasks:
                    raise ValueError(
                        f"task {t.name} sends to unknown task {m.target}"
                    )
                if m.target == t.name:
                    raise ValueError(f"task {t.name} sends to itself")
            for other in t.separated_from:
                if other not in self.tasks:
                    raise ValueError(
                        f"task {t.name} separated from unknown task {other}"
                    )
                if other == t.name:
                    raise ValueError(f"task {t.name} separated from itself")

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks.values())

    def __getitem__(self, name: str) -> Task:
        return self.tasks[name]

    def names(self) -> list[str]:
        """Task names in declaration order."""
        return list(self.tasks)

    def all_messages(self) -> list[tuple[Task, Message]]:
        """Every (sender, message) pair in the set."""
        return [(t, m) for t in self.tasks.values() for m in t.messages]

    def total_utilization(self, arch: Architecture) -> float:
        """Lower bound on total CPU demand: each task's best-case
        utilization over its candidate ECUs."""
        total = 0.0
        for t in self.tasks.values():
            cands = t.candidate_ecus(arch)
            if not cands:
                raise ValueError(f"task {t.name} has no candidate ECU")
            total += min(t.wcet[p] for p in cands) / t.period
        return total

    def communication_pairs(self) -> list[tuple[str, str]]:
        """(sender, receiver) pairs, one per message."""
        return [(t.name, m.target) for (t, m) in self.all_messages()]

    def chains(self) -> list[list[str]]:
        """Maximal sender->receiver chains (transactions), following the
        message graph from tasks that receive nothing."""
        receives = {m.target for (_, m) in self.all_messages()}
        sends: dict[str, list[str]] = {}
        for t, m in self.all_messages():
            sends.setdefault(t.name, []).append(m.target)
        chains: list[list[str]] = []

        def walk(node: str, acc: list[str]) -> None:
            nxt = sends.get(node, [])
            if not nxt:
                chains.append(acc)
                return
            for target in nxt:
                if target in acc:  # cycle guard
                    chains.append(acc)
                    continue
                walk(target, acc + [target])

        for t in self.tasks.values():
            if t.name not in receives:
                walk(t.name, [t.name])
        return [c for c in chains if len(c) > 1]

    def subset(self, names: list[str], name: str | None = None) -> "TaskSet":
        """A consistent sub-task-set: messages to tasks outside the subset
        and separation references outside it are dropped (used by the
        paper's table 3 partitioning experiment)."""
        keep = set(names)
        out: list[Task] = []
        for n in names:
            t = self.tasks[n]
            out.append(
                Task(
                    name=t.name,
                    period=t.period,
                    wcet=dict(t.wcet),
                    deadline=t.deadline,
                    messages=tuple(
                        m for m in t.messages if m.target in keep
                    ),
                    allowed=t.allowed,
                    separated_from=frozenset(
                        s for s in t.separated_from if s in keep
                    ),
                    release_jitter=t.release_jitter,
                    memory=t.memory,
                )
            )
        return TaskSet(out, name=name or f"{self.name}[{len(out)}]")
