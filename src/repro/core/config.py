"""Configuration of the allocation encoder."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EncoderConfig"]


@dataclass
class EncoderConfig:
    """Knobs of :class:`repro.core.encoder.ProblemEncoding`.

    interference
        ``"paper"`` encodes eq. 11 exactly as printed: the preemption
        count ``I^j_i`` is pinned to ``ceil(r_i/t_j)`` for *every*
        co-located pair, including pairs where ``tau_j`` has lower
        priority (whose cost eq. 8 then zeroes anyway).  ``"tight"``
        (default) conditions eq. 11 on ``p^j_i AND (a_i = a_j)`` --
        semantically identical, fewer forced definitions.  The ablation
        benchmark compares both.
    max_path_hops
        Truncate path closures to this many media (None = full simple
        paths), bounding encoding size on large topologies.
    slot_upper
        Upper bound for token-ring slot-length variables; None derives
        ``max frame wire time + slot overhead`` per medium.
    pin_unused
        Pin response-time/counter variables of messages on unused media
        to 0 (smaller search space, more clauses).  The paper leaves them
        unconstrained; semantics are unaffected either way.
    pb_mode
        Emit full-adder axioms as pseudo-Boolean constraints (the GOBLIN
        route of section 5.1) instead of CNF.
    enforce_priority_transitivity
        Add transitivity constraints among equal-deadline task triples.
        The paper's eqs. 9-10 enforce only antisymmetry; a cyclic
        tie-break would not correspond to any realizable priority order,
        so this defaults to True (documented soundness fix).
    diagnostics
        Attach a retractable guard literal to every *obligation*
        (task deadlines, message deadlines, separations, memory
        capacities) so that :func:`repro.core.diagnose.diagnose` can
        extract an unsatisfiable core naming the requirements that
        together make a system infeasible.
    simplify
        Run the algebraic simplification pass
        (:mod:`repro.arith.simplify`: constant folding, range-based
        tautology/contradiction elimination, And/Or dedupe) on every
        formula before triplet transformation.  Equivalence-preserving;
        off only for ablations and differential tests.
    narrow_bits
        Hardwire the statically-zero high bits of non-negative integer
        variables during bit-blasting (smaller circuits, fewer clauses).
        Equivalence-preserving; off only for ablations and differential
        tests.
    """

    interference: str = "tight"
    max_path_hops: int | None = None
    slot_upper: int | None = None
    pin_unused: bool = True
    pb_mode: bool = False
    enforce_priority_transitivity: bool = True
    diagnostics: bool = False
    simplify: bool = True
    narrow_bits: bool = True

    def __post_init__(self):
        if self.interference not in ("paper", "tight"):
            raise ValueError("interference must be 'paper' or 'tight'")
