"""Portfolio solving: heuristics race the exact method.

Runs the greedy, annealing and genetic baselines (cheap) alongside the
SAT optimizer and reports everything: the heuristics provide instant
upper bounds, the SAT route the proven optimum.  Baselines run in worker
processes via :mod:`repro.parallel` so the (GIL-bound) SAT search keeps
one core to itself in the meantime -- the sweep-style parallelism the
hpc-parallel guides recommend when real shared-memory threading is
unavailable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.common import evaluate_cost
from repro.core.allocator import AllocationResult, Allocator
from repro.core.config import EncoderConfig
from repro.core.objectives import (
    MinimizeCanUtilization,
    MinimizeSumTRT,
    MinimizeTRT,
    Objective,
)
from repro.model.architecture import Architecture
from repro.model.task import TaskSet
from repro.parallel import run_sweep

__all__ = ["PortfolioEntry", "PortfolioResult", "solve_portfolio"]


@dataclass
class PortfolioEntry:
    """One contender's outcome."""

    method: str
    feasible: bool
    cost: int | None
    seconds: float
    optimal: bool = False


@dataclass
class PortfolioResult:
    entries: list[PortfolioEntry] = field(default_factory=list)
    exact: AllocationResult | None = None

    @property
    def best(self) -> PortfolioEntry | None:
        feas = [e for e in self.entries if e.feasible]
        return min(feas, key=lambda e: e.cost) if feas else None


def _objective_spec(objective: Objective) -> tuple[str, str | None]:
    if isinstance(objective, MinimizeTRT):
        return "trt", objective.medium
    if isinstance(objective, MinimizeSumTRT):
        return "sum_trt", None
    if isinstance(objective, MinimizeCanUtilization):
        return "can_util", objective.medium
    return "sum_resp", None


def _baseline_cell(param):
    method, system_blob, spec = param
    from repro.io import system_from_dict

    tasks, arch = system_from_dict(system_blob)
    objective, medium = spec
    t0 = time.perf_counter()
    if method == "greedy":
        from repro.baselines.greedy import greedy_first_fit

        out = greedy_first_fit(tasks, arch)
        cost = (
            evaluate_cost(tasks, arch, out.allocation, objective, medium)
            if out.feasible
            else None
        )
        return (out.feasible, cost, time.perf_counter() - t0)
    if method == "annealing":
        from repro.baselines.annealing import simulated_annealing

        out = simulated_annealing(
            tasks, arch, objective=objective, medium=medium,
            iterations=800, seed=1,
        )
        return (out.feasible, out.cost, time.perf_counter() - t0)
    if method == "genetic":
        from repro.baselines.genetic import genetic_allocator

        out = genetic_allocator(
            tasks, arch, objective=objective, medium=medium,
            population=24, generations=25, seed=1,
        )
        return (out.feasible, out.cost, time.perf_counter() - t0)
    raise ValueError(method)


def solve_portfolio(
    tasks: TaskSet,
    arch: Architecture,
    objective: Objective,
    config: EncoderConfig | None = None,
    time_limit: float | None = None,
    processes: int | None = None,
) -> PortfolioResult:
    """Race heuristics against the exact SAT route.

    Heuristic contenders run in worker processes; the SAT optimization
    runs in this process.  Heuristic costs can never beat the proven
    optimum -- the portfolio asserts that invariant.
    """
    from repro.io import system_to_dict

    result = PortfolioResult()
    spec = _objective_spec(objective)
    blob = system_to_dict(tasks, arch)
    cells = [(m, blob, spec) for m in ("greedy", "annealing", "genetic")]
    sweep = run_sweep(_baseline_cell, cells, processes=processes)

    t0 = time.perf_counter()
    exact = Allocator(tasks, arch, config).minimize(
        objective, time_limit=time_limit
    )
    exact_secs = time.perf_counter() - t0
    result.exact = exact
    for cell, res in zip(cells, sweep):
        if not res.ok:
            result.entries.append(
                PortfolioEntry(cell[0], False, None, 0.0)
            )
            continue
        feasible, cost, secs = res.value
        if feasible and exact.feasible and exact.cost is not None:
            assert cost >= exact.cost, (
                f"heuristic {cell[0]} beat the proven optimum: "
                f"{cost} < {exact.cost}"
            )
        result.entries.append(
            PortfolioEntry(cell[0], feasible, cost, secs)
        )
    result.entries.append(
        PortfolioEntry(
            "sat", exact.feasible, exact.cost, exact_secs, optimal=True
        )
    )
    return result
