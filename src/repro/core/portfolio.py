"""Portfolio solving: heuristics race the exact method.

Runs the greedy, annealing and genetic baselines (cheap) alongside the
SAT optimizer and reports everything: the heuristics provide instant
upper bounds, the SAT route the proven optimum.  Baselines run in worker
processes via :mod:`repro.parallel` so the (GIL-bound) SAT search keeps
one core to itself in the meantime -- the sweep-style parallelism the
hpc-parallel guides recommend when real shared-memory threading is
unavailable.

Supervision: ``budget`` bounds the exact route end-to-end through the
:class:`repro.robust.supervisor.SolveSupervisor` escalation chain
(heuristic fallback disabled -- the portfolio already races its own
heuristics), and ``cell_timeout``/``retries`` arm the sweep watchdog for
the baseline workers, so neither a hung probe nor a hung worker can
stall the portfolio.  Failed baseline cells keep their full error
traceback and elapsed time in :class:`PortfolioEntry`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.common import evaluate_cost
from repro.core.allocator import AllocationResult, Allocator
from repro.core.api import SolveRequest, reject_legacy
from repro.core.objectives import Objective, objective_spec
from repro.model.architecture import Architecture
from repro.model.task import TaskSet
from repro.parallel import run_sweep
from repro.robust.supervisor import SolveSupervisor

__all__ = [
    "PortfolioEntry",
    "PortfolioResult",
    "PortfolioInvariantError",
    "solve_portfolio",
]


class PortfolioInvariantError(RuntimeError):
    """A heuristic reported a cost below the *certified* optimum.

    That can only mean a bug (in the encoder, the SAT stack, or the
    heuristic's cost evaluation), so it must fail loudly -- and unlike an
    ``assert`` it survives ``python -O``.
    """


@dataclass
class PortfolioEntry:
    """One contender's outcome."""

    method: str
    feasible: bool
    cost: int | None
    seconds: float
    optimal: bool = False
    #: Full traceback of a failed contender (None on success).
    error: str | None = None


@dataclass
class PortfolioResult:
    entries: list[PortfolioEntry] = field(default_factory=list)
    exact: AllocationResult | None = None

    @property
    def best(self) -> PortfolioEntry | None:
        feas = [e for e in self.entries if e.feasible]
        return min(feas, key=lambda e: e.cost) if feas else None


def _baseline_cell(param):
    method, system_blob, spec = param
    from repro.io import system_from_dict

    tasks, arch = system_from_dict(system_blob)
    objective, medium = spec
    t0 = time.perf_counter()
    if method == "greedy":
        from repro.baselines.greedy import greedy_first_fit

        out = greedy_first_fit(tasks, arch)
        cost = (
            evaluate_cost(tasks, arch, out.allocation, objective, medium)
            if out.feasible
            else None
        )
        return (out.feasible, cost, time.perf_counter() - t0)
    if method == "annealing":
        from repro.baselines.annealing import simulated_annealing

        out = simulated_annealing(
            tasks, arch, objective=objective, medium=medium,
            iterations=800, seed=1,
        )
        return (out.feasible, out.cost, time.perf_counter() - t0)
    if method == "genetic":
        from repro.baselines.genetic import genetic_allocator

        out = genetic_allocator(
            tasks, arch, objective=objective, medium=medium,
            population=24, generations=25, seed=1,
        )
        return (out.feasible, out.cost, time.perf_counter() - t0)
    raise ValueError(method)


def solve_portfolio(
    tasks: TaskSet,
    arch: Architecture,
    objective: Objective | SolveRequest | None = None,
    request: SolveRequest | None = None,
    **legacy,
) -> PortfolioResult:
    """Race heuristics against the exact SAT route.

    Accepts a :class:`~repro.core.api.SolveRequest` (positionally or as
    ``request=``); the legacy per-kwarg shim is gone, and passing one
    raises :class:`TypeError` with a migration hint.  ``request.
    processes`` sizes the baseline sweep *and* the speculative exact
    engine -- a request with ``processes > 1`` (or ``race > 1``) runs
    the exact route on the parallel solve engine.

    Heuristic contenders run in (watchdog-supervised) worker processes;
    the SAT optimization runs in this process, under the supervisor's
    escalation chain when a ``budget`` is given.  A heuristic cost below
    a *certified* optimum raises :class:`PortfolioInvariantError`; an
    anytime (unproven) exact bound may legitimately be beaten, so it is
    not checked against.
    """
    from repro.io import system_to_dict

    if isinstance(objective, SolveRequest):
        if request is not None:
            raise TypeError(
                "pass the SolveRequest positionally or as request=, not both"
            )
        request, objective = objective, None
    reject_legacy("solve_portfolio", legacy)
    if request is None:
        request = SolveRequest()
    if objective is not None:
        request = request.merged(objective=objective)
    objective = request.objective
    sweep_processes = request.processes if request.processes > 1 else None

    result = PortfolioResult()
    spec = objective_spec(objective)
    blob = system_to_dict(tasks, arch)
    cells = [(m, blob, spec) for m in ("greedy", "annealing", "genetic")]
    sweep = run_sweep(
        _baseline_cell, cells, processes=sweep_processes,
        cell_timeout=request.cell_timeout, retries=request.retries,
    )

    t0 = time.perf_counter()
    exact_error: str | None = None
    if request.budget is None:
        exact = Allocator(tasks, arch, request.config).minimize(
            request=request
        )
    else:
        supervised = SolveSupervisor(
            tasks, arch,
            # The portfolio already races its own heuristics.
            request=request.merged(heuristics=()),
        ).solve()
        exact = supervised.result
        if exact is None:
            failed = [s for s in supervised.stages if s.status == "failed"]
            exact_error = failed[-1].detail if failed else supervised.status
    exact_secs = time.perf_counter() - t0
    result.exact = exact

    exact_proven = (
        exact is not None and exact.feasible and exact.cost is not None
        and exact.proven
    )
    for cell, res in zip(cells, sweep):
        if not res.ok:
            result.entries.append(
                PortfolioEntry(cell[0], False, None, res.seconds,
                               error=res.error)
            )
            continue
        feasible, cost, secs = res.value
        if feasible and exact_proven and cost < exact.cost:
            raise PortfolioInvariantError(
                f"heuristic {cell[0]} beat the proven optimum: "
                f"{cost} < {exact.cost}"
            )
        result.entries.append(
            PortfolioEntry(cell[0], feasible, cost, secs)
        )
    result.entries.append(
        PortfolioEntry(
            "sat",
            bool(exact is not None and exact.feasible),
            exact.cost if exact is not None else None,
            exact_secs,
            optimal=exact_proven,
            error=exact_error,
        )
    )
    return result
