"""Cost functions for the optimization loop.

Each objective contributes an integer cost expression over the encoding's
variables plus a static lower bound; :mod:`repro.core.optimize` then
minimizes the cost variable by binary search.

- :class:`MinimizeTRT`: the Token Rotation Time of one token-ring medium
  (the objective of [5] and of the paper's table 1, first row),
- :class:`MinimizeSumTRT`: sum of the TRTs of all token-ring media (the
  paper's table 4 objective for the hierarchical architectures),
- :class:`MinimizeCanUtilization`: bus load of a CAN medium in per-mille
  (the ``U_CAN`` objective of table 1, second row),
- :class:`MinimizeSumResponseTimes`: a simple utilization-style objective
  over task response times, handy for flat architectures without
  messages.
"""

from __future__ import annotations

from repro.arith.ast import Implies, IntConst, IntExpr, Not
from repro.core.encoder import ProblemEncoding, _sum_exprs
from repro.model.architecture import MediumKind

__all__ = [
    "Objective",
    "MinimizeTRT",
    "MinimizeSumTRT",
    "MinimizeCanUtilization",
    "MinimizeSumResponseTimes",
    "objective_spec",
    "objective_from_spec",
]


def objective_spec(objective: "Objective") -> tuple[str, str | None]:
    """Map an objective to the ``(name, medium)`` pair understood by
    :func:`repro.baselines.common.evaluate_cost`, so heuristic baselines
    score allocations on the same scale as the exact optimizer."""
    if isinstance(objective, MinimizeTRT):
        return "trt", objective.medium
    if isinstance(objective, MinimizeSumTRT):
        return "sum_trt", None
    if isinstance(objective, MinimizeCanUtilization):
        return "can_util", objective.medium
    return "sum_resp", None


def objective_from_spec(spec: str) -> "Objective":
    """Parse a textual objective spec (``trt:<medium>``, ``sum_trt``,
    ``can:<medium>``, ``sum_resp``, ``max_util``) into an objective.

    The inverse of :func:`objective_spec` for the specs the CLI and the
    allocation server accept over the wire; raises :class:`ValueError`
    on malformed input (callers map it to their own error surface)."""
    kind, _, arg = spec.partition(":")
    if kind == "trt":
        if not arg:
            raise ValueError("objective trt needs a medium: trt:<medium>")
        return MinimizeTRT(arg)
    if kind == "sum_trt":
        return MinimizeSumTRT()
    if kind == "can":
        if not arg:
            raise ValueError("objective can needs a medium: can:<medium>")
        return MinimizeCanUtilization(arg)
    if kind == "sum_resp":
        return MinimizeSumResponseTimes()
    if kind == "max_util":
        return MinimizeMaxUtilization()
    raise ValueError(f"unknown objective {spec!r}")


#: Scale of utilization objectives: per-mille of the bus bandwidth.
U_SCALE = 1000


class Objective:
    """Base class; subclasses build the cost expression."""

    name = "objective"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        """Return ``(cost expression, static lower bound, upper bound)``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class MinimizeTRT(Objective):
    """Minimize the TDMA round (Token Rotation Time) of one medium."""

    def __init__(self, medium: str):
        self.medium = medium
        self.name = f"min TRT({medium})"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        if self.medium not in enc.trt:
            raise ValueError(
                f"{self.medium} is not a token-ring medium of the encoding"
            )
        var = enc.trt[self.medium]
        return var, var.lo, var.hi


class MinimizeSumTRT(Objective):
    """Minimize the sum of TRTs over all token-ring media (table 4)."""

    name = "min sum TRT"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        if not enc.trt:
            raise ValueError("architecture has no token-ring media")
        exprs = [enc.trt[k] for k in sorted(enc.trt)]
        lo = sum(v.lo for v in exprs)
        hi = sum(v.hi for v in exprs)
        return _sum_exprs(list(exprs)), lo, hi


class MinimizeCanUtilization(Objective):
    """Minimize the load of a CAN medium, in per-mille (U_CAN of table 1).

    The contribution of message m is ``ceil(rho_m * 1000 / t_m)`` when m
    uses the medium and 0 otherwise; auxiliary {0, w} variables tie the
    contributions to the media-usage bits ``K^k_m``.
    """

    def __init__(self, medium: str):
        self.medium = medium
        self.name = f"min U_CAN({medium})"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        k = enc.arch.media[self.medium]
        if k.kind is not MediumKind.CAN:
            raise ValueError(f"{self.medium} is not a CAN medium")
        s = enc.solver
        terms: list[IntExpr] = []
        hi = 0
        for ref in enc.msg_refs:
            if self.medium not in enc._media_of.get(ref, []):
                continue
            task, msg = ref.resolve(enc.tasks)
            rho = k.transmission_ticks(msg.size_bits)
            w = -((-rho * U_SCALE) // task.period)  # ceil per-mille
            u = s.int_var(f"u[{ref},{self.medium}]", 0, w)
            enc.u_contrib[(ref, self.medium)] = u
            ku = enc.k_use[(ref, self.medium)]
            s.require(Implies(ku, u == w))
            s.require(Implies(Not(ku), u == 0))
            terms.append(u)
            hi += w
        if not terms:
            return IntConst(0), 0, 0
        return _sum_exprs(terms), 0, hi


class MinimizeSumResponseTimes(Objective):
    """Minimize the sum of all task response times."""

    name = "min sum r_i"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        exprs = [enc.resp[t.name] for t in enc.tasks]
        lo = sum(v.lo for v in exprs)
        hi = sum(v.hi for v in exprs)
        return _sum_exprs(list(exprs)), lo, hi


class MinimizeMaxUtilization(Objective):
    """Load balancing: minimize the maximum per-ECU CPU utilization.

    The closing remark of the paper's section 4 suggests utilization
    optimization ("an in-equation is added which encodes that the
    difference to the average utilization is below some limit").  This
    objective encodes the equivalent min-max form: per-(task, ECU)
    contribution variables ``u_{i,p} in {0, w_{i,p}}`` tied to the
    allocation, per-ECU sums, and a cost variable dominating every sum.

    ``scale`` sets the integer resolution (1000 = per-mille).
    """

    def __init__(self, scale: int = 1000):
        self.scale = scale
        self.name = f"min max utilization (x{scale})"

    def build(self, enc: ProblemEncoding) -> tuple[IntExpr, int, int]:
        s = enc.solver
        per_ecu_hi: dict[int, int] = {}
        per_ecu_terms: dict[int, list[IntExpr]] = {}
        for t in enc.tasks:
            for idx in enc._candidates(t):
                w = -(
                    (-t.wcet[enc.ecu_names[idx]] * self.scale) // t.period
                )
                u = s.int_var(f"util[{t.name},{idx}]", 0, w)
                placed = enc.a[t.name] == idx
                s.require(Implies(placed, u == w))
                s.require(Implies(Not(placed), u == 0))
                per_ecu_terms.setdefault(idx, []).append(u)
                per_ecu_hi[idx] = per_ecu_hi.get(idx, 0) + w
        hi = max(per_ecu_hi.values(), default=0)
        # Lower bound: the total demand must land somewhere, so the max
        # is at least the average over the candidate ECUs; and at least
        # the largest single mandatory contribution.
        total_min = sum(
            min(
                -((-t.wcet[enc.ecu_names[i]] * self.scale) // t.period)
                for i in enc._candidates(t)
            )
            for t in enc.tasks
        )
        lo = -((-total_min) // max(len(per_ecu_terms), 1))
        cost = s.int_var("$maxutil", 0, hi)
        for idx, terms in per_ecu_terms.items():
            s.require(_sum_exprs(list(terms)) <= cost)
        return cost, max(lo, 0), hi
