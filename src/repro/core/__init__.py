"""The paper's primary contribution: SAT-based optimal task and message
allocation for hierarchical architectures.

- :mod:`repro.core.config` -- encoder configuration knobs,
- :mod:`repro.core.encoder` -- transformation of the allocation problem
  into integer-arithmetic formulae (sections 3 and 4: eqs. 4-14),
- :mod:`repro.core.objectives` -- cost functions (token-ring TRT, sum of
  TRTs, CAN bus utilization, sum of response times),
- :mod:`repro.core.optimize` -- the SOLVE / BIN_SEARCH optimization loop
  of section 5.2, with optional learnt-clause reuse between probes
  (section 7),
- :mod:`repro.core.allocator` -- the :class:`Allocator` facade returning
  a concrete, independently re-checked :class:`repro.analysis.Allocation`.

Typical use::

    from repro.core import Allocator, MinimizeTRT

    result = Allocator(tasks, arch).minimize(MinimizeTRT("ring"))
    print(result.cost, result.allocation.task_ecu)
"""

from repro.core.allocator import AllocationResult, Allocator
from repro.core.api import (
    BoundsProvider,
    BoundsReport,
    ExitCode,
    SolveReport,
    SolveRequest,
    reject_legacy,
    solve,
)
from repro.core.config import EncoderConfig
from repro.core.encoder import ProblemEncoding
from repro.core.objectives import (
    MinimizeCanUtilization,
    MinimizeMaxUtilization,
    MinimizeSumResponseTimes,
    MinimizeSumTRT,
    MinimizeTRT,
    objective_from_spec,
)
from repro.core.optimize import OptimizationOutcome, bin_search

__all__ = [
    "Allocator",
    "AllocationResult",
    "EncoderConfig",
    "ProblemEncoding",
    "MinimizeTRT",
    "MinimizeSumTRT",
    "MinimizeCanUtilization",
    "MinimizeSumResponseTimes",
    "MinimizeMaxUtilization",
    "objective_from_spec",
    "bin_search",
    "OptimizationOutcome",
    "ExitCode",
    "BoundsProvider",
    "BoundsReport",
    "SolveRequest",
    "SolveReport",
    "reject_legacy",
    "solve",
]
