"""SOLVE and BIN_SEARCH (paper section 5.2), with learnt-clause reuse.

The paper minimizes an integer cost variable ``i`` by binary search over
its range, issuing one satisfiability query per probe::

    BIN_SEARCH(phi):
        L := 0;  R := SOLVE(phi)
        while L < R:
            M := (L + R) div 2
            K := SOLVE(phi AND i >= L AND i <= M)
            if K = -1 then L := M else R := K

(The printed pseudocode loops forever when the probe ``[L, L]`` with
``R = L + 1`` is UNSAT -- ``L := M`` does not shrink the interval; we use
the obviously intended ``L := M + 1``.)

Two probe strategies:

- **incremental** (default): one persistent solver; each probe adds its
  bound constraints under a fresh *guard* literal and solves with that
  guard assumed.  All clauses the CDCL engine learns while refuting or
  satisfying a probe remain valid for later probes -- this is exactly the
  "reuse of knowledge derived by the SAT solver's learning algorithm"
  the paper's section 7 reports a >= 2x speedup for.
- **rebuild**: a fresh encoding per probe (the paper's baseline
  behaviour); used by the ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.arith.ast import And, IntExpr, IntVar

__all__ = ["ProbeLog", "OptimizationOutcome", "bin_search"]


@dataclass
class ProbeLog:
    """One SOLVE call of the binary search."""

    lo: int
    hi: int
    sat: bool
    cost: int | None
    seconds: float
    conflicts: int
    decisions: int


@dataclass
class OptimizationOutcome:
    """Result of a BIN_SEARCH run."""

    feasible: bool
    optimum: int | None
    probes: list[ProbeLog] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def num_probes(self) -> int:
        return len(self.probes)


def bin_search(
    solver,
    cost_var: IntVar,
    lower: int,
    upper: int,
    on_sat: Callable[[], None] | None = None,
    time_limit: float | None = None,
) -> OptimizationOutcome:
    """Minimize ``cost_var`` over an :class:`repro.arith.IntSolver`.

    ``on_sat`` is invoked after every satisfiable probe (while the model
    is loaded) so the caller can snapshot the best allocation found so
    far -- after the search the last snapshot belongs to the optimum.

    ``time_limit`` (seconds) turns the search into an anytime algorithm:
    on expiry the best known upper bound is returned with
    ``OptimizationOutcome.feasible`` still true (the bound is then merely
    an upper estimate, recorded in the probe log).
    """
    t0 = time.perf_counter()
    out = OptimizationOutcome(feasible=False, optimum=None)

    def run_probe(lo: int | None, hi: int | None) -> tuple[bool, int | None]:
        guard = solver.new_guard()
        parts = []
        if lo is not None and lo > lower:
            parts.append(cost_var >= lo)
        if hi is not None:
            parts.append(cost_var <= hi)
        if parts:
            solver.require(And(*parts) if len(parts) > 1 else parts[0],
                           guard=guard)
        p0 = time.perf_counter()
        c0 = solver.stats.conflicts
        d0 = solver.stats.decisions
        sat = solver.solve(assumptions=[guard])
        seconds = time.perf_counter() - p0
        cost = solver.value(cost_var) if sat else None
        out.probes.append(
            ProbeLog(
                lo=lo if lo is not None else lower,
                hi=hi if hi is not None else upper,
                sat=sat,
                cost=cost,
                seconds=seconds,
                conflicts=solver.stats.conflicts - c0,
                decisions=solver.stats.decisions - d0,
            )
        )
        if sat and on_sat is not None:
            on_sat()
        return sat, cost

    # R := SOLVE(phi): the initial unconstrained query.
    sat, cost = run_probe(None, None)
    if not sat:
        out.seconds = time.perf_counter() - t0
        return out
    out.feasible = True
    assert cost is not None
    left, right = lower, cost
    while left < right:
        if time_limit is not None and time.perf_counter() - t0 > time_limit:
            break  # anytime: keep the best known upper bound
        mid = (left + right) // 2
        sat, cost = run_probe(left, mid)
        if not sat:
            left = mid + 1
        else:
            assert cost is not None and cost <= mid
            right = cost
    out.optimum = right
    out.seconds = time.perf_counter() - t0
    return out
