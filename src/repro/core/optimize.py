"""SOLVE and BIN_SEARCH (paper section 5.2), with learnt-clause reuse.

The paper minimizes an integer cost variable ``i`` by binary search over
its range, issuing one satisfiability query per probe::

    BIN_SEARCH(phi):
        L := 0;  R := SOLVE(phi)
        while L < R:
            M := (L + R) div 2
            K := SOLVE(phi AND i >= L AND i <= M)
            if K = -1 then L := M else R := K

(The printed pseudocode loops forever when the probe ``[L, L]`` with
``R = L + 1`` is UNSAT -- ``L := M`` does not shrink the interval; we use
the obviously intended ``L := M + 1``.)

Two probe strategies:

- **incremental** (default): one persistent solver; each probe adds its
  bound constraints under a fresh *guard* literal and solves with that
  guard assumed.  All clauses the CDCL engine learns while refuting or
  satisfying a probe remain valid for later probes -- this is exactly the
  "reuse of knowledge derived by the SAT solver's learning algorithm"
  the paper's section 7 reports a >= 2x speedup for.
- **rebuild**: a fresh encoding per probe (the paper's baseline
  behaviour); used by the ablation benchmark.

Supervision (see ``docs/ROBUSTNESS.md``): the search is bounded and
resumable.  A :class:`repro.robust.budget.Budget` interrupts a probe
*mid-search* (the CDCL loop raises ``BudgetExpired`` cooperatively); the
interrupted probe is logged as UNKNOWN and the best bound so far is
returned with :attr:`OptimizationOutcome.proven` False -- an anytime
upper estimate is never silently reported as a certified optimum.  A
:class:`repro.robust.checkpoint.SearchCheckpoint` records ``[L, R]`` and
the probe log after every probe, so an interrupted search resumes where
it stopped and reaches the same certified optimum an uninterrupted run
would have.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.arith.ast import And, IntVar
from repro.robust.budget import Budget, BudgetExpired
from repro.robust.checkpoint import SearchCheckpoint

__all__ = [
    "ProbeLog",
    "OptimizationOutcome",
    "ResolvedBounds",
    "bin_search",
    "CHECKPOINT_FAILURE_LIMIT",
]

#: Consecutive failed checkpoint saves tolerated before a search stops
#: trying to persist (a run on a full disk must still finish and answer).
CHECKPOINT_FAILURE_LIMIT = 3


@dataclass
class ProbeLog:
    """One SOLVE call of the binary search."""

    lo: int
    hi: int
    sat: bool
    cost: int | None
    seconds: float
    conflicts: int
    decisions: int
    #: True when the probe was cut off by a budget before answering --
    #: ``sat`` is then False but means UNKNOWN, not UNSAT.
    interrupted: bool = False
    #: CNF growth caused by this probe's bound constraints (incremental
    #: strategy only; defaults keep old checkpoints loadable).
    vars_added: int = 0
    clauses_added: int = 0
    #: True when the probe was dispatched speculatively by the parallel
    #: engine (:mod:`repro.parallel_solve`); sequential probes keep the
    #: defaults, so old checkpoints stay loadable.
    speculative: bool = False
    #: Speculative probes only: True when the answer tightened the shared
    #: [L, R] interval (a *hit*), False when it arrived too late to add
    #: information (a *miss*); None for sequential probes.
    hit: bool | None = None
    #: True when the engine cancelled this in-flight probe because a
    #: concurrent answer made it obsolete (``sat`` then means nothing).
    cancelled: bool = False
    #: Worker group that served the probe (-1 = in-process).
    group: int = -1
    #: Why this probe ran: ``"initial"`` (the unconstrained SOLVE),
    #: ``"bisect"``, ``"recertify"`` (the final [R, R] audit), or a
    #: ``"bounds:*"`` provenance tag when a :class:`ResolvedBounds`
    #: interval shaped it (``bounds:confirm`` / ``bounds:upper_hint`` /
    #: ``bounds:lower_hint``).  Default keeps old checkpoints loadable.
    origin: str = ""


@dataclass
class OptimizationOutcome:
    """Result of a BIN_SEARCH run."""

    feasible: bool
    optimum: int | None
    probes: list[ProbeLog] = field(default_factory=list)
    seconds: float = 0.0
    #: True when the search closed its interval: a feasible outcome is a
    #: *certified* optimum (and an infeasible one certified UNSAT).  An
    #: interrupted anytime run reports its best bound with proven False.
    proven: bool = True
    #: True when a budget or time limit cut the search short.
    interrupted: bool = False
    interrupt_reason: str | None = None
    #: True when the run continued from a checkpoint.
    resumed: bool = False
    #: Checkpoint saves that failed with an OSError (full disk, injected
    #: io-error, ...).  The search keeps running -- persistence degrades,
    #: the answer does not -- and disables checkpointing after
    #: :data:`CHECKPOINT_FAILURE_LIMIT` consecutive failures.
    checkpoint_errors: int = 0
    #: True when checkpointing was disabled after repeated save failures.
    checkpoint_disabled: bool = False
    #: Bounds provenance: providers consulted, the audited interval the
    #: search started from vs. the cold one, and which probes the bounds
    #: injected.  Empty when no bounds provider ran (JSON-ready; see
    #: ``docs/BOUNDS.md``).
    bounds: dict = field(default_factory=dict)

    @property
    def num_probes(self) -> int:
        return len(self.probes)

    @property
    def bounds_hits(self) -> int:
        """Probes whose placement came from a bounds provider."""
        return sum(
            1 for p in self.probes if p.origin.startswith("bounds:")
        )

    @property
    def speculative_hits(self) -> int:
        """Speculative probes whose answer tightened the interval."""
        return sum(1 for p in self.probes if p.speculative and p.hit)

    @property
    def speculative_misses(self) -> int:
        """Speculative probes that answered but added no information."""
        return sum(
            1 for p in self.probes
            if p.speculative and p.hit is False and not p.cancelled
        )

    @property
    def cancelled_probes(self) -> int:
        """In-flight probes cancelled as obsolete by the parallel engine."""
        return sum(1 for p in self.probes if p.cancelled)

    @property
    def status(self) -> str:
        """Honest one-word verdict: ``optimal`` / ``upper_bound`` /
        ``infeasible`` / ``unknown``."""
        if self.feasible:
            return "optimal" if self.proven else "upper_bound"
        return "infeasible" if self.proven else "unknown"


@dataclass
class ResolvedBounds:
    """Audited search-interval bounds handed to :func:`bin_search`.

    Built by :func:`repro.bounds.providers.resolve_bounds` -- the one
    sanctioned path by which warm caches, heuristic baselines and the
    relaxation sidecar reach the binary search.  Trust is explicit:

    - ``lower``: certified floor -- its :class:`repro.certify.bounds.
      BoundCertificate` passed the independent re-audit, so the search
      may start at ``left = lower`` and skip the UNSAT probes below it.
    - ``upper``: known-achievable cost -- its witness passed the
      independent analysis, so the search starts at ``right = upper``
      and skips the initial unconstrained SOLVE.
    - ``lower_hint`` / ``upper_hint``: unaudited guesses.  They only
      reorder probes (one targeted probe each) and can never shrink the
      certified interval by themselves; a wrong hint costs one probe,
      never the answer.

    Bounds are a probe-order / probe-count change only: the certified
    optimum and the ``{cost, proven, status}`` envelope are identical to
    a cold run's.
    """

    lower: int | None = None
    upper: int | None = None
    lower_hint: int | None = None
    upper_hint: int | None = None
    #: The caller holds an allocation achieving ``upper``, so a search
    #: closing exactly there needs no model-loading ``[R, R]`` probe
    #: (certified runs keep the probe regardless: the certificate must
    #: contain a SAT audit of the served model).
    model_loaded: bool = False
    #: Bound field -> provider name, for the probe log / stats.
    provenance: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """JSON-ready summary (only the fields actually set)."""
        out: dict = {}
        for k in ("lower", "upper", "lower_hint", "upper_hint"):
            v = getattr(self, k)
            if v is not None:
                out[k] = v
        if self.provenance:
            out["provenance"] = dict(self.provenance)
        return out


def bin_search(
    solver,
    cost_var: IntVar,
    lower: int,
    upper: int,
    on_sat: Callable[[], None] | None = None,
    time_limit: float | None = None,
    budget: Budget | None = None,
    checkpoint: SearchCheckpoint | None = None,
    on_checkpoint: Callable[[SearchCheckpoint], None] | None = None,
    on_probe: Callable[[ProbeLog, object], None] | None = None,
    bounds: ResolvedBounds | None = None,
) -> OptimizationOutcome:
    """Minimize ``cost_var`` over an :class:`repro.arith.IntSolver`.

    ``on_sat`` is invoked after every satisfiable probe (while the model
    is loaded) so the caller can snapshot the best allocation found so
    far -- after the search the last snapshot belongs to the optimum.

    ``on_probe`` is invoked after *every* probe (including interrupted
    ones) with the fresh :class:`ProbeLog` and the probe's guard
    literal; :class:`repro.certify.ProbeCertifier` uses it to check each
    answer's certificate while the probe's state is still loaded.

    ``time_limit`` (seconds) turns the search into an anytime algorithm:
    on expiry the best known upper bound is returned with ``feasible``
    still true but ``proven`` False.  It is only checked *between*
    probes; pass ``budget`` to also interrupt a probe mid-search.

    ``budget`` is charged across all probes of this run; when it expires
    the in-flight probe is logged as interrupted and the outcome carries
    the best bound known so far (``status`` is ``upper_bound`` or, before
    any feasible model, ``unknown``).

    ``checkpoint`` resumes a previous run's state and is updated after
    every probe; ``on_checkpoint`` is then called (and the checkpoint
    saved when it has a path).  A resumed run that finds no new model
    re-certifies the optimum with one final ``[R, R]`` probe, so its
    model and cost match an uninterrupted run's.

    ``bounds`` (a :class:`ResolvedBounds`) seeds the search interval
    from *audited* provider bounds and reorders probes for the unaudited
    hints; see the class docstring for the trust levels.  The caller --
    normally :class:`repro.core.allocator.Allocator` via
    :func:`repro.bounds.providers.resolve_bounds` -- is responsible for
    having audited ``lower``/``upper``; ``bin_search`` itself only
    range-clamps them.  Out-of-range bounds are ignored; resumed runs
    ignore bounds entirely (the checkpoint interval is stronger).  The
    provenance of every bounds-shaped probe lands in
    :attr:`ProbeLog.origin` and the interval arithmetic in
    :attr:`OptimizationOutcome.bounds`.
    """
    t0 = time.perf_counter()
    out = OptimizationOutcome(feasible=False, optimum=None, proven=False)
    if budget is not None:
        budget.start()
    if checkpoint is None and on_checkpoint is not None:
        checkpoint = SearchCheckpoint(lower=lower, upper=upper)

    ckpt_failures = [0]  # consecutive failed saves

    def sync_checkpoint() -> None:
        if checkpoint is None:
            return
        checkpoint.lower = lower
        checkpoint.upper = upper
        checkpoint.left = left
        checkpoint.right = right
        if out.feasible:
            checkpoint.feasible = True
        elif out.proven:
            checkpoint.feasible = False
        else:
            # Initial SOLVE not answered yet: a resume re-runs it.
            checkpoint.feasible = None
        checkpoint.probes = [asdict(p) for p in out.probes]
        if on_checkpoint is not None:
            on_checkpoint(checkpoint)
        if checkpoint.path is None:
            return
        try:
            checkpoint.save()
        except OSError:
            # Persistence degrades, the search does not: count the
            # failure, and after CHECKPOINT_FAILURE_LIMIT consecutive
            # ones stop retrying (a full disk won't heal mid-run).
            out.checkpoint_errors += 1
            ckpt_failures[0] += 1
            if ckpt_failures[0] >= CHECKPOINT_FAILURE_LIMIT:
                checkpoint.path = None
                out.checkpoint_disabled = True
        else:
            ckpt_failures[0] = 0

    def run_probe(
        lo: int | None, hi: int | None, origin: str = "bisect"
    ) -> tuple[bool, int | None]:
        guard = solver.new_guard()
        sat_engine = getattr(solver, "sat", None)
        v0 = sat_engine.nvars if sat_engine is not None else 0
        n0 = sat_engine.num_clauses() if sat_engine is not None else 0
        parts = []
        if lo is not None and lo > lower:
            parts.append(cost_var >= lo)
        if hi is not None:
            parts.append(cost_var <= hi)
        if parts:
            solver.require(And(*parts) if len(parts) > 1 else parts[0],
                           guard=guard)
        vars_added = (
            sat_engine.nvars - v0 if sat_engine is not None else 0
        )
        clauses_added = (
            sat_engine.num_clauses() - n0 if sat_engine is not None else 0
        )
        p0 = time.perf_counter()
        c0 = solver.stats.conflicts
        d0 = solver.stats.decisions
        try:
            if budget is not None:
                sat = solver.solve(assumptions=[guard], budget=budget)
            else:
                sat = solver.solve(assumptions=[guard])
        except BudgetExpired as exc:
            out.probes.append(
                ProbeLog(
                    lo=lo if lo is not None else lower,
                    hi=hi if hi is not None else upper,
                    sat=False,
                    cost=None,
                    seconds=time.perf_counter() - p0,
                    conflicts=solver.stats.conflicts - c0,
                    decisions=solver.stats.decisions - d0,
                    interrupted=True,
                    vars_added=vars_added,
                    clauses_added=clauses_added,
                    origin=origin,
                )
            )
            out.interrupted = True
            out.interrupt_reason = str(exc)
            if on_probe is not None:
                on_probe(out.probes[-1], guard)
            raise
        seconds = time.perf_counter() - p0
        cost = solver.value(cost_var) if sat else None
        out.probes.append(
            ProbeLog(
                lo=lo if lo is not None else lower,
                hi=hi if hi is not None else upper,
                sat=sat,
                cost=cost,
                seconds=seconds,
                conflicts=solver.stats.conflicts - c0,
                decisions=solver.stats.decisions - d0,
                vars_added=vars_added,
                clauses_added=clauses_added,
                origin=origin,
            )
        )
        if sat and on_sat is not None:
            on_sat()
        if on_probe is not None:
            on_probe(out.probes[-1], guard)
        return sat, cost

    left: int | None = None
    right: int | None = None
    model_loaded = False
    confirm_first = False
    rb = bounds or ResolvedBounds()
    floor_probe: int | None = None

    def note_bounds(**extra) -> None:
        if bounds is None:
            return
        out.bounds.update(rb.describe())
        out.bounds.setdefault("interval_cold", [lower, upper])
        out.bounds.update(extra)

    if checkpoint is not None and checkpoint.started:
        # Resume: skip the work the previous run already certified.
        # Bounds are ignored -- the checkpoint interval is stronger.
        if checkpoint.lower != lower or checkpoint.upper != upper:
            raise ValueError(
                f"checkpoint range [{checkpoint.lower}, {checkpoint.upper}] "
                f"does not match this search's [{lower}, {upper}]"
            )
        out.resumed = True
        out.probes = [ProbeLog(**p) for p in checkpoint.probes]
        note_bounds(ignored="resumed from checkpoint")
        if checkpoint.feasible is False:
            out.proven = True
            out.seconds = time.perf_counter() - t0
            return out
        out.feasible = True
        left, right = checkpoint.left, checkpoint.right
        assert left is not None and right is not None
    else:
        # Certified floor: the region below it is audited empty, so the
        # search never probes there (and the initial SOLVE may carry
        # ``cost >= floor``).
        floor = lower
        if rb.lower is not None and lower < rb.lower:
            floor = min(rb.lower, upper)
        trusted_upper = rb.upper
        if trusted_upper is not None and not (lower <= trusted_upper <= upper):
            trusted_upper = None  # out of scale: ignore defensively
        hint = rb.upper_hint
        if hint is not None and (
            trusted_upper is not None or not (floor <= hint < upper)
        ):
            hint = None  # audited upper wins / out of range: ignore
        if rb.lower_hint is not None and floor < rb.lower_hint:
            floor_probe = min(rb.lower_hint, upper)
        initial_skipped = False
        if trusted_upper is not None:
            # The caller audited the bound achievable via the
            # independent analysis: no probe needed at all, the interval
            # starts at [floor, upper_bound].  Unless the caller also
            # holds the witness model, the final [R, R] re-certification
            # loads one if no SAT probe runs.
            out.feasible = True
            left, right = min(floor, trusted_upper), trusted_upper
            confirm_first = left < right
            model_loaded = rb.model_loaded
            initial_skipped = True
            sync_checkpoint()
        elif hint is not None:
            # Unaudited upper hint: probe the hinted region first.  SAT
            # makes the expensive unconstrained SOLVE unnecessary; UNSAT
            # certifies "no solution <= hint", so the search continues
            # above.
            try:
                sat, cost = run_probe(floor, hint, origin="bounds:upper_hint")
            except BudgetExpired:
                out.seconds = time.perf_counter() - t0
                sync_checkpoint()
                note_bounds()
                return out  # status: unknown
            if sat:
                assert cost is not None
                out.feasible = True
                model_loaded = True
                left, right = min(floor, cost), cost
                # A hint usually comes from a near-identical scenario
                # whose optimum survived the perturbation, so try to
                # close the interval with a single UNSAT(cost-1) probe
                # before falling back to bisection.
                confirm_first = True
                initial_skipped = True
                sync_checkpoint()
            else:
                floor = hint + 1
        if right is None:
            # R := SOLVE(phi): the initial unconstrained query (bounded
            # below by the certified floor, when one is known).
            try:
                sat, cost = run_probe(
                    floor,
                    None,
                    origin="initial" if floor <= lower else "bounds:floor",
                )
            except BudgetExpired:
                out.seconds = time.perf_counter() - t0
                sync_checkpoint()
                note_bounds()
                return out  # status: unknown
            if not sat:
                out.proven = True  # certified infeasibility
                out.seconds = time.perf_counter() - t0
                left, right = floor, None
                sync_checkpoint()
                note_bounds(interval_start=[left, right])
                return out
            out.feasible = True
            model_loaded = True
            assert cost is not None
            left, right = floor, cost
            sync_checkpoint()
        note_bounds(
            interval_start=[left, right],
            initial_solve_skipped=initial_skipped,
        )

    while left < right:
        if time_limit is not None and time.perf_counter() - t0 > time_limit:
            # Anytime: keep the best known upper bound, honestly unproven.
            out.interrupted = True
            out.interrupt_reason = f"time limit ({time_limit:g}s) expired"
            break
        if budget is not None and budget.expired():
            out.interrupted = True
            out.interrupt_reason = budget.expired_reason
            break
        if confirm_first:
            mid, origin = right - 1, "bounds:confirm"
            confirm_first = False
        elif floor_probe is not None and left < floor_probe <= right:
            # Unaudited lower hint: one targeted probe at [left, hint-1].
            # UNSAT certifies the hint as the true floor in a single
            # step; SAT just shrinks the interval like any bisect probe.
            mid, origin = floor_probe - 1, "bounds:lower_hint"
            floor_probe = None
        else:
            mid, origin = (left + right) // 2, "bisect"
            floor_probe = None  # out of range now: stop rechecking
        try:
            sat, cost = run_probe(left, mid, origin=origin)
        except BudgetExpired:
            break  # interrupted probe already logged; keep best bound
        if not sat:
            left = mid + 1
        else:
            assert cost is not None and cost <= mid
            right = cost
            model_loaded = True
        sync_checkpoint()

    out.optimum = right
    out.proven = left >= right
    if out.proven and not model_loaded:
        # A resumed run may close the interval without any SAT probe of
        # its own; re-certify [R, R] so the model (and on_sat snapshot)
        # belong to the optimum, exactly as in an uninterrupted run.
        try:
            sat, _ = run_probe(right, right, origin="recertify")
        except BudgetExpired:
            out.proven = False
            out.seconds = time.perf_counter() - t0
            sync_checkpoint()
            return out
        if not sat:
            raise ValueError(
                "recorded state is inconsistent with the constraints: "
                f"optimum {right} (from a checkpoint or an audited "
                "bounds witness) is not satisfiable"
            )
        sync_checkpoint()
    out.seconds = time.perf_counter() - t0
    return out
