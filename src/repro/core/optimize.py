"""SOLVE and BIN_SEARCH (paper section 5.2), with learnt-clause reuse.

The paper minimizes an integer cost variable ``i`` by binary search over
its range, issuing one satisfiability query per probe::

    BIN_SEARCH(phi):
        L := 0;  R := SOLVE(phi)
        while L < R:
            M := (L + R) div 2
            K := SOLVE(phi AND i >= L AND i <= M)
            if K = -1 then L := M else R := K

(The printed pseudocode loops forever when the probe ``[L, L]`` with
``R = L + 1`` is UNSAT -- ``L := M`` does not shrink the interval; we use
the obviously intended ``L := M + 1``.)

Two probe strategies:

- **incremental** (default): one persistent solver; each probe adds its
  bound constraints under a fresh *guard* literal and solves with that
  guard assumed.  All clauses the CDCL engine learns while refuting or
  satisfying a probe remain valid for later probes -- this is exactly the
  "reuse of knowledge derived by the SAT solver's learning algorithm"
  the paper's section 7 reports a >= 2x speedup for.
- **rebuild**: a fresh encoding per probe (the paper's baseline
  behaviour); used by the ablation benchmark.

Supervision (see ``docs/ROBUSTNESS.md``): the search is bounded and
resumable.  A :class:`repro.robust.budget.Budget` interrupts a probe
*mid-search* (the CDCL loop raises ``BudgetExpired`` cooperatively); the
interrupted probe is logged as UNKNOWN and the best bound so far is
returned with :attr:`OptimizationOutcome.proven` False -- an anytime
upper estimate is never silently reported as a certified optimum.  A
:class:`repro.robust.checkpoint.SearchCheckpoint` records ``[L, R]`` and
the probe log after every probe, so an interrupted search resumes where
it stopped and reaches the same certified optimum an uninterrupted run
would have.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.arith.ast import And, IntVar
from repro.robust.budget import Budget, BudgetExpired
from repro.robust.checkpoint import SearchCheckpoint

__all__ = [
    "ProbeLog",
    "OptimizationOutcome",
    "bin_search",
    "CHECKPOINT_FAILURE_LIMIT",
]

#: Consecutive failed checkpoint saves tolerated before a search stops
#: trying to persist (a run on a full disk must still finish and answer).
CHECKPOINT_FAILURE_LIMIT = 3


@dataclass
class ProbeLog:
    """One SOLVE call of the binary search."""

    lo: int
    hi: int
    sat: bool
    cost: int | None
    seconds: float
    conflicts: int
    decisions: int
    #: True when the probe was cut off by a budget before answering --
    #: ``sat`` is then False but means UNKNOWN, not UNSAT.
    interrupted: bool = False
    #: CNF growth caused by this probe's bound constraints (incremental
    #: strategy only; defaults keep old checkpoints loadable).
    vars_added: int = 0
    clauses_added: int = 0
    #: True when the probe was dispatched speculatively by the parallel
    #: engine (:mod:`repro.parallel_solve`); sequential probes keep the
    #: defaults, so old checkpoints stay loadable.
    speculative: bool = False
    #: Speculative probes only: True when the answer tightened the shared
    #: [L, R] interval (a *hit*), False when it arrived too late to add
    #: information (a *miss*); None for sequential probes.
    hit: bool | None = None
    #: True when the engine cancelled this in-flight probe because a
    #: concurrent answer made it obsolete (``sat`` then means nothing).
    cancelled: bool = False
    #: Worker group that served the probe (-1 = in-process).
    group: int = -1


@dataclass
class OptimizationOutcome:
    """Result of a BIN_SEARCH run."""

    feasible: bool
    optimum: int | None
    probes: list[ProbeLog] = field(default_factory=list)
    seconds: float = 0.0
    #: True when the search closed its interval: a feasible outcome is a
    #: *certified* optimum (and an infeasible one certified UNSAT).  An
    #: interrupted anytime run reports its best bound with proven False.
    proven: bool = True
    #: True when a budget or time limit cut the search short.
    interrupted: bool = False
    interrupt_reason: str | None = None
    #: True when the run continued from a checkpoint.
    resumed: bool = False
    #: Checkpoint saves that failed with an OSError (full disk, injected
    #: io-error, ...).  The search keeps running -- persistence degrades,
    #: the answer does not -- and disables checkpointing after
    #: :data:`CHECKPOINT_FAILURE_LIMIT` consecutive failures.
    checkpoint_errors: int = 0
    #: True when checkpointing was disabled after repeated save failures.
    checkpoint_disabled: bool = False

    @property
    def num_probes(self) -> int:
        return len(self.probes)

    @property
    def speculative_hits(self) -> int:
        """Speculative probes whose answer tightened the interval."""
        return sum(1 for p in self.probes if p.speculative and p.hit)

    @property
    def speculative_misses(self) -> int:
        """Speculative probes that answered but added no information."""
        return sum(
            1 for p in self.probes
            if p.speculative and p.hit is False and not p.cancelled
        )

    @property
    def cancelled_probes(self) -> int:
        """In-flight probes cancelled as obsolete by the parallel engine."""
        return sum(1 for p in self.probes if p.cancelled)

    @property
    def status(self) -> str:
        """Honest one-word verdict: ``optimal`` / ``upper_bound`` /
        ``infeasible`` / ``unknown``."""
        if self.feasible:
            return "optimal" if self.proven else "upper_bound"
        return "infeasible" if self.proven else "unknown"


def bin_search(
    solver,
    cost_var: IntVar,
    lower: int,
    upper: int,
    on_sat: Callable[[], None] | None = None,
    time_limit: float | None = None,
    budget: Budget | None = None,
    checkpoint: SearchCheckpoint | None = None,
    on_checkpoint: Callable[[SearchCheckpoint], None] | None = None,
    on_probe: Callable[[ProbeLog, object], None] | None = None,
    warm_hint: int | None = None,
    warm_trusted: bool = False,
    warm_model_loaded: bool = False,
) -> OptimizationOutcome:
    """Minimize ``cost_var`` over an :class:`repro.arith.IntSolver`.

    ``on_sat`` is invoked after every satisfiable probe (while the model
    is loaded) so the caller can snapshot the best allocation found so
    far -- after the search the last snapshot belongs to the optimum.

    ``on_probe`` is invoked after *every* probe (including interrupted
    ones) with the fresh :class:`ProbeLog` and the probe's guard
    literal; :class:`repro.certify.ProbeCertifier` uses it to check each
    answer's certificate while the probe's state is still loaded.

    ``time_limit`` (seconds) turns the search into an anytime algorithm:
    on expiry the best known upper bound is returned with ``feasible``
    still true but ``proven`` False.  It is only checked *between*
    probes; pass ``budget`` to also interrupt a probe mid-search.

    ``budget`` is charged across all probes of this run; when it expires
    the in-flight probe is logged as interrupted and the outcome carries
    the best bound known so far (``status`` is ``upper_bound`` or, before
    any feasible model, ``unknown``).

    ``checkpoint`` resumes a previous run's state and is updated after
    every probe; ``on_checkpoint`` is then called (and the checkpoint
    saved when it has a path).  A resumed run that finds no new model
    re-certifies the optimum with one final ``[R, R]`` probe, so its
    model and cost match an uninterrupted run's.

    ``warm_hint`` (a cost achievable for a *related* problem, e.g. the
    last optimum of a base scenario a serve request perturbs) replaces
    the initial unconstrained SOLVE with a probe of ``cost <= hint``:
    SAT starts the interval at the model's cost, UNSAT certifies the
    region empty and the search resumes above ``hint`` after one
    unconstrained probe.  The hint is a *probe order* change only -- the
    certified optimum, its proof and the outcome envelope are identical
    to a cold run's; an out-of-range hint is ignored.  Resumed runs
    ignore the hint (the checkpoint interval is stronger).

    ``warm_trusted`` asserts that the caller has independently *proved*
    ``warm_hint`` achievable (e.g. by re-running the analysis on a cached
    allocation, see ``Allocator._audit_warm_witness``), so even the hint
    probe is skipped: the search starts directly on ``[lower, hint]``
    and usually closes with a single ``UNSAT(hint - 1)`` probe.
    ``warm_model_loaded`` additionally says the caller *holds* an
    allocation achieving the hint, so if the interval closes at the hint
    the final ``[R, R]`` re-certification probe is unnecessary too (the
    caller substitutes its witness; certified runs keep the probe so the
    certificate contains a SAT audit of the served model).
    """
    t0 = time.perf_counter()
    out = OptimizationOutcome(feasible=False, optimum=None, proven=False)
    if budget is not None:
        budget.start()
    if checkpoint is None and on_checkpoint is not None:
        checkpoint = SearchCheckpoint(lower=lower, upper=upper)

    ckpt_failures = [0]  # consecutive failed saves

    def sync_checkpoint() -> None:
        if checkpoint is None:
            return
        checkpoint.lower = lower
        checkpoint.upper = upper
        checkpoint.left = left
        checkpoint.right = right
        if out.feasible:
            checkpoint.feasible = True
        elif out.proven:
            checkpoint.feasible = False
        else:
            # Initial SOLVE not answered yet: a resume re-runs it.
            checkpoint.feasible = None
        checkpoint.probes = [asdict(p) for p in out.probes]
        if on_checkpoint is not None:
            on_checkpoint(checkpoint)
        if checkpoint.path is None:
            return
        try:
            checkpoint.save()
        except OSError:
            # Persistence degrades, the search does not: count the
            # failure, and after CHECKPOINT_FAILURE_LIMIT consecutive
            # ones stop retrying (a full disk won't heal mid-run).
            out.checkpoint_errors += 1
            ckpt_failures[0] += 1
            if ckpt_failures[0] >= CHECKPOINT_FAILURE_LIMIT:
                checkpoint.path = None
                out.checkpoint_disabled = True
        else:
            ckpt_failures[0] = 0

    def run_probe(lo: int | None, hi: int | None) -> tuple[bool, int | None]:
        guard = solver.new_guard()
        sat_engine = getattr(solver, "sat", None)
        v0 = sat_engine.nvars if sat_engine is not None else 0
        n0 = sat_engine.num_clauses() if sat_engine is not None else 0
        parts = []
        if lo is not None and lo > lower:
            parts.append(cost_var >= lo)
        if hi is not None:
            parts.append(cost_var <= hi)
        if parts:
            solver.require(And(*parts) if len(parts) > 1 else parts[0],
                           guard=guard)
        vars_added = (
            sat_engine.nvars - v0 if sat_engine is not None else 0
        )
        clauses_added = (
            sat_engine.num_clauses() - n0 if sat_engine is not None else 0
        )
        p0 = time.perf_counter()
        c0 = solver.stats.conflicts
        d0 = solver.stats.decisions
        try:
            if budget is not None:
                sat = solver.solve(assumptions=[guard], budget=budget)
            else:
                sat = solver.solve(assumptions=[guard])
        except BudgetExpired as exc:
            out.probes.append(
                ProbeLog(
                    lo=lo if lo is not None else lower,
                    hi=hi if hi is not None else upper,
                    sat=False,
                    cost=None,
                    seconds=time.perf_counter() - p0,
                    conflicts=solver.stats.conflicts - c0,
                    decisions=solver.stats.decisions - d0,
                    interrupted=True,
                    vars_added=vars_added,
                    clauses_added=clauses_added,
                )
            )
            out.interrupted = True
            out.interrupt_reason = str(exc)
            if on_probe is not None:
                on_probe(out.probes[-1], guard)
            raise
        seconds = time.perf_counter() - p0
        cost = solver.value(cost_var) if sat else None
        out.probes.append(
            ProbeLog(
                lo=lo if lo is not None else lower,
                hi=hi if hi is not None else upper,
                sat=sat,
                cost=cost,
                seconds=seconds,
                conflicts=solver.stats.conflicts - c0,
                decisions=solver.stats.decisions - d0,
                vars_added=vars_added,
                clauses_added=clauses_added,
            )
        )
        if sat and on_sat is not None:
            on_sat()
        if on_probe is not None:
            on_probe(out.probes[-1], guard)
        return sat, cost

    left: int | None = None
    right: int | None = None
    model_loaded = False
    confirm_first = False

    if checkpoint is not None and checkpoint.started:
        # Resume: skip the work the previous run already certified.
        if checkpoint.lower != lower or checkpoint.upper != upper:
            raise ValueError(
                f"checkpoint range [{checkpoint.lower}, {checkpoint.upper}] "
                f"does not match this search's [{lower}, {upper}]"
            )
        out.resumed = True
        out.probes = [ProbeLog(**p) for p in checkpoint.probes]
        if checkpoint.feasible is False:
            out.proven = True
            out.seconds = time.perf_counter() - t0
            return out
        out.feasible = True
        left, right = checkpoint.left, checkpoint.right
        assert left is not None and right is not None
    else:
        hint = warm_hint
        if hint is not None and not (lower <= hint < upper):
            hint = None  # out of range: nothing to gain, ignore
        warm_floor = lower
        if hint is not None and warm_trusted:
            # The caller certified the hint achievable via the
            # independent analysis: no probe needed at all, the interval
            # starts at [lower, hint].  Unless the caller also holds the
            # witness model, the final [R, R] re-certification loads one
            # if no SAT probe runs.
            out.feasible = True
            left, right = lower, hint
            confirm_first = True
            model_loaded = warm_model_loaded
            sync_checkpoint()
        elif hint is not None:
            # Warm start: probe the hinted region first.  SAT makes the
            # expensive unconstrained SOLVE unnecessary; UNSAT certifies
            # "no solution <= hint", so the search continues above.
            try:
                sat, cost = run_probe(None, hint)
            except BudgetExpired:
                out.seconds = time.perf_counter() - t0
                sync_checkpoint()
                return out  # status: unknown
            if sat:
                assert cost is not None
                out.feasible = True
                model_loaded = True
                left, right = lower, cost
                # A hint usually comes from a near-identical scenario
                # whose optimum survived the perturbation, so try to
                # close the interval with a single UNSAT(cost-1) probe
                # before falling back to bisection.
                confirm_first = True
                sync_checkpoint()
            else:
                warm_floor = hint + 1
        if right is None:
            # R := SOLVE(phi): the initial unconstrained query.
            try:
                sat, cost = run_probe(None, None)
            except BudgetExpired:
                out.seconds = time.perf_counter() - t0
                sync_checkpoint()
                return out  # status: unknown
            if not sat:
                out.proven = True  # certified infeasibility
                out.seconds = time.perf_counter() - t0
                left, right = lower, None
                sync_checkpoint()
                return out
            out.feasible = True
            model_loaded = True
            assert cost is not None
            left, right = warm_floor, cost
            sync_checkpoint()

    while left < right:
        if time_limit is not None and time.perf_counter() - t0 > time_limit:
            # Anytime: keep the best known upper bound, honestly unproven.
            out.interrupted = True
            out.interrupt_reason = f"time limit ({time_limit:g}s) expired"
            break
        if budget is not None and budget.expired():
            out.interrupted = True
            out.interrupt_reason = budget.expired_reason
            break
        mid = right - 1 if confirm_first else (left + right) // 2
        confirm_first = False
        try:
            sat, cost = run_probe(left, mid)
        except BudgetExpired:
            break  # interrupted probe already logged; keep best bound
        if not sat:
            left = mid + 1
        else:
            assert cost is not None and cost <= mid
            right = cost
            model_loaded = True
        sync_checkpoint()

    out.optimum = right
    out.proven = left >= right
    if out.proven and not model_loaded:
        # A resumed run may close the interval without any SAT probe of
        # its own; re-certify [R, R] so the model (and on_sat snapshot)
        # belong to the optimum, exactly as in an uninterrupted run.
        try:
            sat, _ = run_probe(right, right)
        except BudgetExpired:
            out.proven = False
            out.seconds = time.perf_counter() - t0
            sync_checkpoint()
            return out
        if not sat:
            raise ValueError(
                "recorded state is inconsistent with the constraints: "
                f"optimum {right} (from a checkpoint or a trusted warm "
                "witness) is not satisfiable"
            )
        sync_checkpoint()
    out.seconds = time.perf_counter() - t0
    return out
