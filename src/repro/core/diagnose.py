"""Infeasibility diagnosis via assumption cores.

When a system has no schedulable allocation, the interesting question is
*which requirements conflict*.  With ``EncoderConfig(diagnostics=True)``
every obligation -- task deadline, message deadline, separation pair,
memory capacity -- is guarded by a fresh assumption literal; solving
under all guards and extracting the CDCL engine's assumption core yields
a subset of obligations that is already unsatisfiable together.

``minimize=True`` shrinks the core further by the classic deletion
filter (drop one obligation at a time and re-solve; thanks to learnt-
clause reuse the follow-up queries are cheap), yielding a minimal
conflicting requirement set.

Example::

    from repro.core.diagnose import diagnose

    report = diagnose(tasks, arch)
    if not report.feasible:
        print("conflicting requirements:", report.core)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EncoderConfig
from repro.core.encoder import ProblemEncoding
from repro.model.architecture import Architecture
from repro.model.task import TaskSet

__all__ = ["Diagnosis", "diagnose"]


@dataclass
class Diagnosis:
    """Result of an infeasibility diagnosis."""

    feasible: bool
    core: list[str] = field(default_factory=list)
    minimized: bool = False
    solve_calls: int = 0
    #: Core label -> human-readable explanation of the obligation.
    details: dict[str, str] = field(default_factory=dict)
    #: Provenance label -> number of solver clauses/PB constraints the
    #: encoder tagged with it (how much formula each requirement owns).
    tagged_clauses: dict[str, int] = field(default_factory=dict)

    def by_kind(self) -> dict[str, list[str]]:
        """Group the core labels by obligation kind
        (deadline / msg-deadline / separation / memory)."""
        out: dict[str, list[str]] = {}
        for label in self.core:
            kind, _, rest = label.partition(":")
            out.setdefault(kind, []).append(rest)
        return out

    def describe(self) -> list[str]:
        """Human-readable line per core obligation."""
        return [
            self.details.get(label, label) for label in self.core
        ]


def _describe_label(label: str, tasks: TaskSet, arch: Architecture) -> str:
    """Map a constraint provenance label to a model-level sentence."""
    kind, _, rest = label.partition(":")
    if kind == "deadline" and rest in tasks.names():
        t = tasks[rest]
        return (
            f'task "{rest}" must meet its deadline of {t.deadline} ticks'
        )
    if kind == "separation":
        a, _, b = rest.partition(",")
        return (
            f'tasks "{a}" and "{b}" must be placed on different ECUs'
        )
    if kind == "memory":
        cap = None
        ecu = arch.ecus.get(rest)
        if ecu is not None:
            cap = ecu.memory
        if cap is not None:
            return (
                f'ECU "{rest}" cannot hold its tasks within '
                f"{cap} memory units"
            )
        return f'ECU "{rest}" cannot hold its tasks within its memory'
    if kind == "msg-deadline":
        return (
            f"message {rest} must arrive within its end-to-end deadline"
        )
    return label


def diagnose(
    tasks: TaskSet,
    arch: Architecture,
    config: EncoderConfig | None = None,
    minimize: bool = True,
) -> Diagnosis:
    """Explain why a system has no feasible allocation.

    Returns ``Diagnosis(feasible=True)`` when the system is in fact
    schedulable; otherwise a (by default minimized) set of obligation
    labels that conflict.  An empty core on an infeasible system means
    the *structural* constraints alone (placement domains, routing,
    response-time definitions) are contradictory.
    """
    cfg = config or EncoderConfig()
    if not cfg.diagnostics:
        from dataclasses import replace

        cfg = replace(cfg, diagnostics=True)
    enc = ProblemEncoding(tasks, arch, cfg)
    solver = enc.solver
    labels = sorted(enc.obligations)
    guard_of = {label: enc.obligations[label] for label in labels}
    calls = 0

    def solve_with(active: list[str]) -> bool:
        nonlocal calls
        calls += 1
        return solver.solve(
            assumptions=[guard_of[l] for l in active]
        )

    def finish(diag: Diagnosis) -> Diagnosis:
        diag.details = {
            label: _describe_label(label, tasks, arch)
            for label in diag.core
        }
        diag.tagged_clauses = solver.sat.tag_counts()
        return diag

    if solve_with(labels):
        return Diagnosis(feasible=True, solve_calls=calls)

    # Map the engine's assumption core back to labels.
    core_vars = {id(v) for v in solver.last_core()}
    core = [l for l in labels if id(guard_of[l]) in core_vars]
    if not core:
        return finish(Diagnosis(feasible=False, core=[], solve_calls=calls))

    if minimize:
        # Deletion filter: drop one obligation at a time; if still UNSAT
        # without it, it was not needed.
        kept = list(core)
        i = 0
        while i < len(kept):
            candidate = kept[:i] + kept[i + 1 :]
            if not solve_with(candidate):
                # Still UNSAT; additionally tighten to the new core.
                core_vars = {id(v) for v in solver.last_core()}
                kept = [
                    l for l in candidate if id(guard_of[l]) in core_vars
                ] or candidate
            else:
                i += 1
        core = kept
        return finish(
            Diagnosis(
                feasible=False, core=core, minimized=True,
                solve_calls=calls,
            )
        )
    return finish(Diagnosis(feasible=False, core=core, solve_calls=calls))
