"""High-level facade: encode, optimize, decode, and re-verify.

:class:`Allocator` is the public entry point of the library::

    from repro.core import Allocator, MinimizeTRT

    result = Allocator(tasks, arch).minimize(MinimizeTRT("ring"))
    if result.feasible:
        print(result.cost, result.allocation.task_ecu)

Every allocation the optimizer emits is re-checked by the independent
analysis of :mod:`repro.analysis.feasibility` (defence in depth: a bug in
the encoder or the SAT stack would surface as a verification failure, not
as a silently wrong "optimal" answer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import FeasibilityReport, check_allocation
from repro.core.api import SolveRequest, reject_legacy
from repro.core.config import EncoderConfig
from repro.core.encoder import ProblemEncoding
from repro.core.objectives import Objective
from repro.core.optimize import OptimizationOutcome, bin_search
from repro.model.architecture import Architecture
from repro.model.task import TaskSet
from repro.robust.budget import Budget, BudgetExpired
from repro.robust.checkpoint import SearchCheckpoint

__all__ = ["Allocator", "AllocationResult"]


def _governor_recorder(request: SolveRequest):
    """The governor's flight-recorder hook for this request (or None)."""
    if request.governor is None or not request.flight_log:
        return None
    from repro.robust.flight import FlightRecorder

    return FlightRecorder(request.flight_log, actor="governor").log


@dataclass
class AllocationResult:
    """Outcome of an allocation run."""

    feasible: bool
    cost: int | None
    allocation: Allocation | None
    outcome: OptimizationOutcome | None
    formula_size: dict = field(default_factory=dict)
    solver_stats: dict = field(default_factory=dict)
    verification: FeasibilityReport | None = None
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Cross-layer encoding instrumentation (see
    #: :class:`repro.arith.stats.EncodeStats`), JSON-ready.
    encode_stats: dict = field(default_factory=dict)
    #: Per-probe certification verdicts (a
    #: :class:`repro.certify.CertifiedResult`) when the run was made with
    #: ``certify=True``; None otherwise.
    certificate: object | None = None

    @property
    def verified(self) -> bool:
        """True when the independent analysis confirmed the allocation."""
        return bool(self.verification and self.verification.schedulable)

    @property
    def proven(self) -> bool:
        """True when ``cost`` is a certified optimum (or infeasibility is
        certified) -- False for anytime upper bounds from an interrupted
        search."""
        return self.outcome.proven if self.outcome is not None else False

    @property
    def status(self) -> str:
        """``optimal`` / ``upper_bound`` / ``infeasible`` / ``unknown``."""
        return self.outcome.status if self.outcome is not None else "unknown"

    @property
    def certified(self) -> bool:
        """True when the run was certified and every answered probe's
        certificate checked out."""
        return bool(
            self.certificate is not None and self.certificate.all_verified
        )


class Allocator:
    """SAT-based optimal task/message allocator (the paper's method)."""

    def __init__(
        self,
        tasks: TaskSet,
        arch: Architecture,
        config: EncoderConfig | None = None,
    ):
        self.tasks = tasks
        self.arch = arch
        self.config = config or EncoderConfig()

    def _encode(self, objective: Objective | None):
        t0 = time.perf_counter()
        enc = ProblemEncoding(self.tasks, self.arch, self.config)
        cost_var = None
        lo = hi = 0
        if objective is not None:
            expr, lo, hi = objective.build(enc)
            cost_var = enc.solver.int_var("$cost", lo, hi)
            enc.solver.require(cost_var == expr)
        return enc, cost_var, lo, hi, time.perf_counter() - t0

    def minimize(
        self,
        objective: Objective | SolveRequest | None = None,
        request: SolveRequest | None = None,
        **legacy,
    ) -> AllocationResult:
        """Find the cost-minimal feasible allocation.

        Calling convention: pass a :class:`~repro.core.api.SolveRequest`
        (positionally or as ``request=``), optionally with a bare
        objective: ``minimize(MinimizeTRT("ring"))``.  The PR 4 legacy
        kwargs (``time_limit=``, ``budget=``, ...) are gone; passing one
        raises :class:`TypeError` with a migration hint.

        ``request.certify`` makes every probe return a checkable
        artifact (see :mod:`repro.certify`): UNSAT answers log a
        DRUP-style proof replayed by an independent checker, SAT answers
        are audited against the analysis; verdicts land on
        ``result.certificate``.

        ``request.reuse_learned=False`` (strategy ``rebuild``) rebuilds
        the encoding from scratch for every binary-search probe (the
        paper's pre-section-7 baseline; used by the clause-reuse
        ablation benchmark).

        ``request.budget`` bounds the whole search (wall time /
        conflicts / decisions) and can interrupt a probe mid-search; the
        result then carries the best anytime bound with ``proven`` False
        instead of hanging.  ``request.checkpoint`` (a
        :class:`SearchCheckpoint` or a file path) persists the
        binary-search state after every probe and resumes from it when
        it already holds state; a resumed run reaches the same certified
        optimum as an uninterrupted one.

        ``request.bounds`` providers are resolved and audited before the
        search (:func:`repro.bounds.providers.resolve_bounds`); audited
        bounds seed the interval, unaudited ones reorder probes, and the
        certified answer is bit-identical either way.

        A request with ``processes > 1``, ``race > 1`` or strategy
        ``speculative`` routes to the parallel engine
        (:func:`repro.parallel_solve.speculative_minimize`), which
        returns the same certified optimum as the sequential search.
        """
        if isinstance(objective, SolveRequest):
            if request is not None:
                raise TypeError(
                    "pass the SolveRequest positionally or as request=, "
                    "not both"
                )
            request, objective = objective, None
        reject_legacy("Allocator.minimize", legacy)
        request = request if request is not None else SolveRequest()
        if objective is not None:
            request = request.merged(objective=objective)
        objective = request.objective
        if objective is None:
            raise TypeError("Allocator.minimize requires an objective")
        from repro.chaos import active
        from repro.governor import governed

        with active(request.chaos), governed(
            request.governor, recorder=_governor_recorder(request)
        ) as gov:
            if gov is not None and request.budget is not None:
                gov.register_budget(request.budget)
            res = self._dispatch_minimize(objective, request)
            if gov is not None:
                res.solver_stats = dict(res.solver_stats or {})
                res.solver_stats["governor"] = gov.stats_dict()
            return res

    def _dispatch_minimize(
        self, objective: Objective, request: SolveRequest
    ) -> AllocationResult:
        ckpt = self._as_checkpoint(request.checkpoint)
        if (
            request.parallel
            and request.effective_groups() * request.effective_racers()
            > 1
        ):
            from repro.parallel_solve import speculative_minimize

            return speculative_minimize(
                self, objective, request.merged(checkpoint=ckpt)
            )
        if request.strategy == "rebuild" or not request.reuse_learned:
            return self._minimize_rebuild(
                objective, request.time_limit, request.verify,
                request.budget, request.certify,
            )
        proof_log = request.proof_log
        if proof_log is not None:
            from repro.certify.proofio import resolve_spool_path

            # Concurrent solves may share one --proof-log directory;
            # namespacing by request fingerprint (+ a per-process
            # sequence) keeps their spools from clobbering each
            # other (see docs/SERVING.md).
            proof_log = resolve_spool_path(
                proof_log, request.fingerprint()
            )
        return self._minimize_incremental(
            objective, request, ckpt, proof_log=proof_log,
        )

    @staticmethod
    def _as_checkpoint(
        checkpoint: SearchCheckpoint | str | None,
    ) -> SearchCheckpoint | None:
        if checkpoint is None or isinstance(checkpoint, SearchCheckpoint):
            return checkpoint
        import os

        if os.path.exists(checkpoint):
            return SearchCheckpoint.load(checkpoint)
        out = SearchCheckpoint()
        out.path = checkpoint
        return out

    def _minimize_incremental(
        self,
        objective: Objective,
        request: SolveRequest,
        checkpoint: SearchCheckpoint | None = None,
        proof_log: str | None = None,
    ) -> AllocationResult:
        time_limit = request.time_limit
        verify = request.verify
        budget = request.budget
        certify = request.certify
        from repro.bounds.providers import resolve_bounds

        rb, witness, bmeta = resolve_bounds(
            self.tasks, self.arch, objective, request
        )
        if certify:
            # Certified runs keep the final [R, R] probe so the
            # certificate carries a SAT audit of the served model.
            rb.model_loaded = False
        enc, cost_var, lo, hi, enc_secs = self._encode(objective)
        assert cost_var is not None
        certifier = None
        if certify:
            from repro.certify import ProbeCertifier

            spool = None
            spool_error: str | None = None
            if proof_log is not None:
                from repro.certify.proofio import ProofSpool

                # A fresh run owns its artifact: a damaged leftover from
                # a crashed predecessor is quarantined, never extended.
                try:
                    spool = ProofSpool(proof_log, fresh=True)
                except OSError as exc:
                    # An unwritable artifact condemns the certificate,
                    # not the solve: the in-memory checker still runs.
                    spool_error = f"cannot open proof artifact: {exc}"
            certifier = ProbeCertifier(
                self.tasks, self.arch, enc, objective, spool=spool
            )
            if spool_error is not None:
                certifier.result.proof_artifact = proof_log
                certifier.result.proof_artifact_ok = False
                certifier.result.proof_artifact_error = spool_error
            if bmeta.get("audits"):
                # The audits that let bounds shrink the interval become
                # part of the certificate, in resolution order (before
                # any probe certificate).
                from repro.certify import ProbeCertificate

                for a in bmeta["audits"]:
                    certifier.result.add(
                        ProbeCertificate(
                            index=len(certifier.result.probes),
                            kind="bounds",
                            ok=True,
                            detail=(
                                f"{a['provider']} {a['side']}: "
                                f"{a['detail']}"
                            ),
                        )
                    )
        # The audited witness stands in for the optimum's model until a
        # SAT probe finds one (any SAT probe overwrites it): if the
        # search closes at the witness's own cost, no model-loading
        # probe is needed at all.
        best: list[Allocation | None] = [witness]

        def snapshot() -> None:
            best[0] = enc.decode()

        on_checkpoint = None
        if checkpoint is not None:

            def on_checkpoint(c: SearchCheckpoint) -> None:
                # Persist the best allocation alongside [L, R] so even a
                # twice-interrupted run can hand back a usable result.
                if best[0] is not None:
                    from repro.io import allocation_to_dict

                    c.payload = allocation_to_dict(best[0])

        outcome = bin_search(
            enc.solver, cost_var, lo, hi, on_sat=snapshot,
            time_limit=time_limit, budget=budget,
            checkpoint=checkpoint, on_checkpoint=on_checkpoint,
            on_probe=certifier.on_probe if certifier is not None else None,
            bounds=rb if bmeta.get("providers") else None,
        )
        if bmeta.get("providers"):
            outcome.bounds.setdefault("mode", bmeta["mode"])
            outcome.bounds["providers"] = bmeta["providers"]
            if bmeta.get("notes"):
                outcome.bounds["notes"] = bmeta["notes"]
            outcome.bounds["bounds_hits"] = outcome.bounds_hits
        if best[0] is None and checkpoint is not None and checkpoint.payload:
            from repro.io import allocation_from_dict

            best[0] = allocation_from_dict(checkpoint.payload)
        certificate = certifier.finalize() if certifier is not None else None
        return self._finish(
            enc, outcome, best[0], enc_secs, verify, certificate
        )

    def _minimize_rebuild(
        self,
        objective: Objective,
        time_limit: float | None,
        verify: bool,
        budget: Budget | None = None,
        certify: bool = False,
    ) -> AllocationResult:
        """BIN_SEARCH with a fresh solver per probe (no clause reuse).

        One ``budget`` spans all probes (each fresh solver charges the
        same pool), so the rebuild strategy honors the same end-to-end
        bound as the incremental one.  With ``certify=True`` every fresh
        solver logs its own self-contained proof, checked right after the
        probe answers (UNSAT probes here run without assumptions, so
        their proof must derive the empty clause outright).
        """
        from repro.core.optimize import OptimizationOutcome, ProbeLog

        certificate = None
        if certify:
            from repro.certify import CertifiedResult

            certificate = CertifiedResult()

        t0 = time.perf_counter()
        enc, cost_var, lo, hi, enc_secs = self._encode(objective)
        outcome = OptimizationOutcome(feasible=False, optimum=None,
                                      proven=False)
        best: Allocation | None = None
        last_enc = enc

        def probe(lo_b: int | None, hi_b: int | None):
            nonlocal best, last_enc, enc_secs
            if lo_b is None and hi_b is None:
                probe_enc, pcost = enc, cost_var
            else:
                probe_enc, pcost, _, _, secs = self._encode(objective)
                enc_secs += secs
                if lo_b is not None and lo_b > lo:
                    probe_enc.solver.require(pcost >= lo_b)
                if hi_b is not None:
                    probe_enc.solver.require(pcost <= hi_b)
            last_enc = probe_enc
            if certificate is not None:
                probe_enc.solver.sat.start_proof()
            p0 = time.perf_counter()
            try:
                sat = probe_enc.solver.solve(budget=budget)
            except BudgetExpired as exc:
                outcome.probes.append(
                    ProbeLog(
                        lo=lo_b if lo_b is not None else lo,
                        hi=hi_b if hi_b is not None else hi,
                        sat=False,
                        cost=None,
                        seconds=time.perf_counter() - p0,
                        conflicts=probe_enc.solver.stats.conflicts,
                        decisions=probe_enc.solver.stats.decisions,
                        interrupted=True,
                    )
                )
                outcome.interrupted = True
                outcome.interrupt_reason = str(exc)
                if certificate is not None:
                    from repro.certify import ProbeCertificate

                    certificate.add(
                        ProbeCertificate(
                            index=len(certificate.probes),
                            kind="skipped",
                            ok=True,
                        )
                    )
                raise
            secs = time.perf_counter() - p0
            cost = probe_enc.solver.value(pcost) if sat else None
            outcome.probes.append(
                ProbeLog(
                    lo=lo_b if lo_b is not None else lo,
                    hi=hi_b if hi_b is not None else hi,
                    sat=sat,
                    cost=cost,
                    seconds=secs,
                    conflicts=probe_enc.solver.stats.conflicts,
                    decisions=probe_enc.solver.stats.decisions,
                )
            )
            if sat:
                best = probe_enc.decode()
            if certificate is not None:
                from repro.certify import (
                    certify_sat_probe,
                    certify_unsat_probe,
                )

                index = len(certificate.probes)
                if sat:
                    certificate.add(
                        certify_sat_probe(
                            self.tasks, self.arch, probe_enc, objective,
                            claimed_cost=cost, index=index,
                        )
                    )
                else:
                    cert, lines = certify_unsat_probe(probe_enc, index)
                    certificate.add(cert)
                    certificate.proof_lines += lines
            return sat, cost

        try:
            sat, cost = probe(None, None)
        except BudgetExpired:
            outcome.seconds = time.perf_counter() - t0
            return self._finish(
                last_enc, outcome, best, enc_secs, verify, certificate
            )
        if sat:
            outcome.feasible = True
            assert cost is not None
            left, right = lo, cost
            while left < right:
                if (
                    time_limit is not None
                    and time.perf_counter() - t0 > time_limit
                ):
                    outcome.interrupted = True
                    outcome.interrupt_reason = (
                        f"time limit ({time_limit:g}s) expired"
                    )
                    break
                mid = (left + right) // 2
                try:
                    sat, cost = probe(left, mid)
                except BudgetExpired:
                    break
                if not sat:
                    left = mid + 1
                else:
                    assert cost is not None
                    right = cost
            outcome.optimum = right
            outcome.proven = left >= right
        else:
            outcome.proven = True  # certified infeasibility
        outcome.seconds = time.perf_counter() - t0
        return self._finish(
            last_enc, outcome, best, enc_secs, verify, certificate
        )

    def find_feasible(
        self,
        request: SolveRequest | None = None,
        **legacy,
    ) -> AllocationResult:
        """One SOLVE call: any allocation satisfying all constraints.

        Accepts a :class:`~repro.core.api.SolveRequest` (positionally or
        as ``request=``).  The PR 4 legacy kwargs (``verify=``,
        ``budget=``, ``certify=``) are gone; passing one raises
        :class:`TypeError` with a migration hint.
        """
        reject_legacy("Allocator.find_feasible", legacy)
        request = request if request is not None else SolveRequest()
        from repro.chaos import active
        from repro.governor import governed

        with active(request.chaos), governed(
            request.governor, recorder=_governor_recorder(request)
        ) as gov:
            if gov is not None and request.budget is not None:
                gov.register_budget(request.budget)
            res = self._find_feasible(request)
            if gov is not None:
                res.solver_stats = dict(res.solver_stats or {})
                res.solver_stats["governor"] = gov.stats_dict()
            return res

    def _find_feasible(self, request: SolveRequest) -> AllocationResult:
        verify = request.verify
        budget = request.budget
        certify = request.certify
        enc, _, _, _, enc_secs = self._encode(None)
        certificate = None
        if certify:
            from repro.certify import CertifiedResult

            certificate = CertifiedResult()
            enc.solver.sat.start_proof()
        t0 = time.perf_counter()
        try:
            sat = enc.solver.solve(budget=budget)
        except BudgetExpired as exc:
            outcome = OptimizationOutcome(
                feasible=False, optimum=None, proven=False,
                interrupted=True, interrupt_reason=str(exc),
            )
            outcome.seconds = time.perf_counter() - t0
            if certificate is not None:
                from repro.certify import ProbeCertificate

                certificate.add(
                    ProbeCertificate(index=0, kind="skipped", ok=True)
                )
            return self._finish(
                enc, outcome, None, enc_secs, verify, certificate
            )
        outcome = OptimizationOutcome(feasible=sat, optimum=None)
        outcome.seconds = time.perf_counter() - t0
        alloc = enc.decode() if sat else None
        if certificate is not None:
            from repro.certify import certify_sat_probe, certify_unsat_probe

            if sat:
                certificate.add(
                    certify_sat_probe(self.tasks, self.arch, enc)
                )
            else:
                cert, lines = certify_unsat_probe(enc)
                certificate.add(cert)
                certificate.proof_lines += lines
        return self._finish(enc, outcome, alloc, enc_secs, verify, certificate)

    def _finish(
        self,
        enc: ProblemEncoding,
        outcome: OptimizationOutcome,
        alloc: Allocation | None,
        enc_secs: float,
        verify: bool,
        certificate=None,
    ) -> AllocationResult:
        report = None
        if verify and alloc is not None:
            report = check_allocation(self.tasks, self.arch, alloc)
        return AllocationResult(
            feasible=outcome.feasible,
            cost=outcome.optimum,
            allocation=alloc,
            outcome=outcome,
            formula_size=enc.formula_size(),
            solver_stats=enc.solver.stats.snapshot(),
            verification=report,
            encode_seconds=enc_secs,
            solve_seconds=outcome.seconds,
            encode_stats=enc.encode_stats(),
            certificate=certificate,
        )
