"""Transformation of the allocation problem into integer formulae.

Implements sections 3 and 4 of the paper:

- eq. (4):  placement restrictions pi_i and separation delta_i,
- eq. (5):  per-ECU WCET selection,
- eq. (6):  response time = WCET + sum of preemption costs,
- eqs. (7)/(8): preemption cost ``pc^j_i = I^j_i * wcet_j`` for
  higher-priority co-located tasks, 0 otherwise,
- eqs. (9)/(10): deadline-monotonic priorities with free, antisymmetric
  tie-breaks for equal deadlines (plus an optional transitivity fix,
  see :class:`repro.core.config.EncoderConfig`),
- eqs. (11)/(12): the ceiling function of eq. (1) as the integer pair
  ``I*t_j >= r_i  AND  (I-1)*t_j < r_i``,
- eq. (13): deadlines,
- section 4: path-closure selection ``Pf_m``, media-usage bits ``K^k_m``
  with the one-sub-path disjunction of eq. (14) and the endpoint
  condition v(h), per-medium local deadlines with gateway service cost,
  jitter inheritance along the chosen path, and per-medium message
  response times (eq. 2 for CAN media, eq. 3 with the non-linear
  ``Imb * (Lambda - osl)`` blocking term for TDMA media -- the term that
  makes the overall problem a *non-linear* integer program).

The encoder is pure constraint generation on top of
:class:`repro.arith.IntSolver`; the paper's triplet transformation and
2's-complement bit-blasting happen underneath.
"""

from __future__ import annotations

from repro.analysis.allocation import Allocation, MsgRef
from repro.arith import And, IntSolver, Not, Or
from repro.arith.ast import (
    BoolExpr,
    BoolVar,
    FALSE,
    Implies,
    IntConst,
    IntExpr,
    IntVar,
    TRUE,
)
from repro.core.config import EncoderConfig
from repro.model.architecture import Architecture, MediumKind
from repro.model.paths import PathClosure, enumerate_path_closures
from repro.model.task import Task, TaskSet

__all__ = ["ProblemEncoding"]


def _sum_exprs(parts: list[IntExpr]) -> IntExpr:
    """Balanced summation tree (keeps intermediate bit widths tight)."""
    if not parts:
        return IntConst(0)
    while len(parts) > 1:
        nxt = []
        for i in range(0, len(parts) - 1, 2):
            nxt.append(parts[i] + parts[i + 1])
        if len(parts) % 2:
            nxt.append(parts[-1])
        parts = nxt
    return parts[0]


class ProblemEncoding:
    """All decision variables and constraints for one allocation problem.

    After construction the encoding is complete except for the objective;
    an objective from :mod:`repro.core.objectives` contributes the cost
    expression, and :mod:`repro.core.optimize` drives the search.
    """

    def __init__(
        self,
        tasks: TaskSet,
        arch: Architecture,
        config: EncoderConfig | None = None,
    ):
        self.tasks = tasks
        self.arch = arch
        self.config = config or EncoderConfig()
        self.solver = IntSolver(
            pb_mode=self.config.pb_mode,
            simplify=self.config.simplify,
            narrow_bits=self.config.narrow_bits,
        )

        self.ecu_names = arch.ecu_names()
        self.ecu_index = {p: i for i, p in enumerate(self.ecu_names)}
        self.closures: list[PathClosure] = enumerate_path_closures(
            arch, max_hops=self.config.max_path_hops
        )

        # Decision variables (populated by the _build_* passes).
        self.a: dict[str, IntVar] = {}
        self.wcet: dict[str, IntExpr] = {}
        self.resp: dict[str, IntVar] = {}
        self.preempt_count: dict[tuple[str, str], IntVar] = {}
        self.preempt_cost: dict[tuple[str, str], IntVar] = {}
        self.tie_break: dict[tuple[str, str], BoolVar] = {}
        self.msg_refs: list[MsgRef] = [
            MsgRef(t.name, i) for t in tasks for i in range(len(t.messages))
        ]
        self.pf: dict[MsgRef, IntVar] = {}
        self.k_use: dict[tuple[MsgRef, str], BoolVar] = {}
        self.local_dl: dict[tuple[MsgRef, str], IntVar] = {}
        self.gw_cost: dict[tuple[MsgRef, str], IntVar] = {}
        self.msg_jitter: dict[tuple[MsgRef, str], IntVar] = {}
        self.msg_resp: dict[tuple[MsgRef, str], IntVar] = {}
        self.send_ecu: dict[tuple[MsgRef, str], IntVar] = {}
        self.slot: dict[tuple[str, str], IntVar] = {}
        self.trt: dict[str, IntVar] = {}
        self.u_contrib: dict[tuple[MsgRef, str], IntVar] = {}
        #: Constant priority rank per message (unique; smaller = higher).
        self.msg_rank: dict[MsgRef, int] = {}
        #: Diagnostics mode: obligation label -> guard variable.
        self.obligations: dict[str, BoolVar] = {}

        self._build_allocation_vars()
        self._build_priorities()
        self._build_wcet_and_response_vars()
        self._build_task_rta()
        self._build_slots()
        self._build_messages()
        self._build_memory_capacities()
        self._boost_primary_decisions()

    def _build_memory_capacities(self) -> None:
        """Per-ECU memory capacities as engine-level PB constraints:
        ``sum_i mem_i * [a_i = p] <= capacity_p`` (the 'memory
        consumption' requirement class inherited from [5]).

        Emitted directly as pseudo-Boolean constraints over the truth
        literals of the ``a_i = p`` comparisons -- exactly the kind of
        0-1 side constraint the PB formulation makes cheap.
        """
        from repro.pb.constraint import Relation, add_constraint

        consumers = [t for t in self.tasks if t.memory > 0]
        if not consumers:
            return
        for p, ecu in self.arch.ecus.items():
            if ecu.memory is None:
                continue
            idx = self.ecu_index[p]
            terms: list[tuple[int, int]] = []
            for t in consumers:
                if idx not in self._candidates(t):
                    continue
                lit = self.solver.literal(self.a[t.name] == idx)
                terms.append((t.memory, lit))
            if not terms:
                continue
            guard = self._obligation_guard(f"memory:{p}")
            with self.solver.sat.tagged(f"memory:{p}"):
                if guard is not None:
                    # g -> (sum <= cap), as the relaxed PB constraint
                    # sum + M*g <= cap + M with M covering the full demand.
                    big_m = max(0, sum(m for m, _ in terms) - ecu.memory)
                    glit = self.solver.literal(guard)
                    terms.append((big_m, glit))
                    add_constraint(
                        self.solver.sat, terms, Relation.LE,
                        ecu.memory + big_m,
                    )
                else:
                    add_constraint(
                        self.solver.sat, terms, Relation.LE, ecu.memory
                    )

    def _boost_primary_decisions(self) -> None:
        """Seed VSIDS toward the primary decision variables (allocation,
        tie-breaks, path closures, media usage): every other variable is
        functionally determined by these, so branching on them first
        collapses the search space (the paper's section 6 observation)."""
        s = self.solver
        for a in self.a.values():
            s.boost(a, 8.0)
        for tb in self.tie_break.values():
            s.boost(tb, 4.0)
        for pf in self.pf.values():
            s.boost(pf, 6.0)
        for ku in self.k_use.values():
            s.boost(ku, 6.0)

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _candidates(self, task: Task) -> list[int]:
        """Candidate ECU indices for a task (pi_i and WCET-map filtered)."""
        return [self.ecu_index[p] for p in task.candidate_ecus(self.arch)]

    def _alloc_in(self, task: Task, ecu_idxs: set[int]) -> BoolExpr:
        """Formula ``Pi(task) in ecu_idxs`` over the task's candidates."""
        usable = [i for i in self._candidates(task) if i in ecu_idxs]
        if not usable:
            return FALSE
        if set(usable) >= set(self._candidates(task)):
            return TRUE
        return Or(*[self.a[task.name] == i for i in usable])

    def _obligation_guard(self, label: str) -> BoolVar | None:
        """Guard variable for a named obligation (diagnostics mode only);
        the same label always returns the same guard, so all constraints
        of one requirement retract together."""
        if not self.config.diagnostics:
            return None
        g = self.obligations.get(label)
        if g is None:
            g = self.solver.bool_var(f"$ob[{label}]")
            self.obligations[label] = g
        return g

    def _p_ji(self, i: Task, j: Task) -> BoolExpr:
        """The paper's ``p^j_i``: true when tau_j has higher priority than
        tau_i (eq. 10, with tie-break variables for equal deadlines)."""
        if i.deadline > j.deadline:
            return TRUE
        if i.deadline < j.deadline:
            return FALSE
        key = (min(i.name, j.name), max(i.name, j.name))
        var = self.tie_break[key]
        # var means "first-named task has higher priority".
        return var if key[0] == j.name else Not(var)

    # ------------------------------------------------------------------
    # eq. (4): allocation variables, placement and separation
    # ------------------------------------------------------------------

    def _build_allocation_vars(self) -> None:
        s = self.solver
        for t in self.tasks:
            cands = self._candidates(t)
            if not cands:
                raise ValueError(f"task {t.name} has no candidate ECU")
            a = s.int_var(f"a[{t.name}]", min(cands), max(cands))
            self.a[t.name] = a
            # Exclude the non-candidates within the range (eq. 4 left).
            cand_set = set(cands)
            for idx in range(min(cands), max(cands) + 1):
                if idx not in cand_set:
                    s.require(a != idx)
        # Separation constraints (eq. 4 right), once per unordered pair.
        done = set()
        for t in self.tasks:
            for other in t.separated_from:
                key = (min(t.name, other), max(t.name, other))
                if key in done:
                    continue
                done.add(key)
                s.require(
                    self.a[t.name] != self.a[other],
                    guard=self._obligation_guard(
                        f"separation:{key[0]},{key[1]}"
                    ),
                    label=f"separation:{key[0]},{key[1]}",
                )

    # ------------------------------------------------------------------
    # eqs. (9)/(10): priority tie-break variables
    # ------------------------------------------------------------------

    def _build_priorities(self) -> None:
        names = self.tasks.names()
        by_deadline: dict[int, list[str]] = {}
        for t in self.tasks:
            by_deadline.setdefault(t.deadline, []).append(t.name)
        for group in by_deadline.values():
            group.sort()
            for x in range(len(group)):
                for y in range(x + 1, len(group)):
                    key = (group[x], group[y])
                    self.tie_break[key] = self.solver.bool_var(
                        f"p[{key[0]}>{key[1]}]"
                    )
            if self.config.enforce_priority_transitivity and len(group) >= 3:
                # (p^j_i AND p^k_j) -> p^k_i over equal-deadline triples.
                for x in range(len(group)):
                    for y in range(len(group)):
                        for z in range(len(group)):
                            if len({x, y, z}) < 3:
                                continue
                            ti = self.tasks[group[x]]
                            tj = self.tasks[group[y]]
                            tk = self.tasks[group[z]]
                            self.solver.require(
                                Implies(
                                    And(
                                        self._p_ji(ti, tj),
                                        self._p_ji(tj, tk),
                                    ),
                                    self._p_ji(ti, tk),
                                )
                            )

    # ------------------------------------------------------------------
    # eq. (5): WCET selection; response-time variable declarations
    # ------------------------------------------------------------------

    def _build_wcet_and_response_vars(self) -> None:
        s = self.solver
        for t in self.tasks:
            cands = self._candidates(t)
            costs = {i: t.wcet[self.ecu_names[i]] for i in cands}
            values = set(costs.values())
            if len(values) == 1:
                self.wcet[t.name] = IntConst(next(iter(values)))
            else:
                w = s.int_var(
                    f"wcet[{t.name}]", min(values), max(values)
                )
                self.wcet[t.name] = w
                for i, c in costs.items():
                    s.require(Implies(self.a[t.name] == i, w == c))
            lo = min(values)
            self.resp[t.name] = s.int_var(f"r[{t.name}]", lo, t.deadline)

    # ------------------------------------------------------------------
    # eqs. (6)-(8), (11)-(13): task response-time analysis
    # ------------------------------------------------------------------

    def _may_colocate(self, i: Task, j: Task) -> bool:
        """Static pruning: can the pair ever share an ECU?"""
        if j.name in i.separated_from or i.name in j.separated_from:
            return False
        return bool(set(self._candidates(i)) & set(self._candidates(j)))

    def _build_task_rta(self) -> None:
        s = self.solver
        paper_mode = self.config.interference == "paper"
        for ti in self.tasks:
            costs: list[IntExpr] = [self.wcet[ti.name]]
            r = self.resp[ti.name]
            for tj in self.tasks:
                if tj.name == ti.name:
                    continue
                if not self._may_colocate(ti, tj):
                    continue  # eq. (12)/(8) hold vacuously
                pair = (ti.name, tj.name)
                # ceil((d_i + J_j)/t_j): the most jobs of tau_j that can
                # land inside tau_i's response window.
                i_ub = -((-(ti.deadline + tj.release_jitter)) // tj.period)
                count = s.int_var(f"I[{pair[0]},{pair[1]}]", 0, i_ub)
                wj = self.wcet[tj.name]
                if isinstance(wj, IntConst):
                    pc_ub = i_ub * wj.value
                else:
                    pc_ub = i_ub * max(
                        tj.wcet[self.ecu_names[k]]
                        for k in self._candidates(tj)
                    )
                cost = s.int_var(
                    f"pc[{pair[0]},{pair[1]}]", 0, min(pc_ub, ti.deadline)
                )
                self.preempt_count[pair] = count
                self.preempt_cost[pair] = cost
                costs.append(cost)

                colocated = self.a[ti.name] == self.a[tj.name]
                higher = self._p_ji(ti, tj)
                active = (
                    colocated
                    if higher is TRUE
                    else (FALSE if higher is FALSE else And(higher, colocated))
                )
                # eqs. (7)/(8): preemption cost.
                if active is FALSE:
                    s.require(cost == 0)
                else:
                    s.require(Implies(active, cost == count * wj))
                    s.require(Implies(Not(active), cost == 0))
                # eqs. (11)/(12): the ceiling bounds on I^j_i, with the
                # interferer's release jitter J_j widening the window
                # (the "release jitter, blocking factors, etc." remark at
                # the end of section 2).
                ceil_guard = colocated if paper_mode else active
                prod = count * tj.period
                jj = tj.release_jitter
                bounds = And(prod >= r + jj, prod < r + jj + tj.period)
                if ceil_guard is FALSE:
                    s.require(count == 0)
                else:
                    s.require(Implies(ceil_guard, bounds))
                    s.require(Implies(Not(ceil_guard), count == 0))
            # eq. (6): the response-time fixed point, and eq. (13) with
            # the task's own release jitter on the deadline side.  In
            # diagnostics mode the guard retracts the *whole* obligation
            # (definition + check): the response variable's range already
            # encodes r <= d, so relaxing only the check would be vacuous.
            g = self._obligation_guard(f"deadline:{ti.name}")
            label = f"deadline:{ti.name}"
            s.require(r == _sum_exprs(costs), guard=g, label=label)
            s.require(
                r <= ti.deadline - ti.release_jitter, guard=g, label=label
            )

    # ------------------------------------------------------------------
    # Token-ring slot table and TRT variables
    # ------------------------------------------------------------------

    def _slot_bounds(self, medium: str) -> tuple[int, int]:
        k = self.arch.media[medium]
        if self.config.slot_upper is not None:
            return k.min_slot, max(self.config.slot_upper, k.min_slot)
        rho_max = 0
        for t in self.tasks:
            for m in t.messages:
                rho_max = max(rho_max, k.transmission_ticks(m.size_bits))
        hi = max(k.min_slot, rho_max + k.slot_overhead)
        return k.min_slot, hi

    def _build_slots(self) -> None:
        s = self.solver
        for kname, k in self.arch.media.items():
            if k.kind is not MediumKind.TOKEN_RING:
                continue
            lo, hi = self._slot_bounds(kname)
            slots = []
            for p in k.ecus:
                v = s.int_var(f"slot[{kname},{p}]", lo, hi)
                self.slot[(kname, p)] = v
                slots.append(v)
            trt = s.int_var(
                f"trt[{kname}]", lo * len(slots), hi * len(slots)
            )
            self.trt[kname] = trt
            s.require(trt == _sum_exprs(list(slots)))

    # ------------------------------------------------------------------
    # Section 4: messages, path closures, local deadlines, jitter, RTA
    # ------------------------------------------------------------------

    def _feasible_subpaths(
        self, ref: MsgRef
    ) -> dict[int, list[tuple[str, ...]]]:
        """Closure index -> sub-paths whose endpoint condition v(h) is not
        statically impossible for this message's candidate placements."""
        task, msg = ref.resolve(self.tasks)
        target = self.tasks[msg.target]
        src_cands = {self.ecu_names[i] for i in self._candidates(task)}
        dst_cands = {self.ecu_names[i] for i in self._candidates(target)}
        out: dict[int, list[tuple[str, ...]]] = {}
        for ph in self.closures:
            feas: list[tuple[str, ...]] = []
            for h in ph.sub_paths:
                src_ok, dst_ok = self._vh_sets(h)
                if (src_ok & src_cands or src_ok == {"*"}) and (
                    dst_ok & dst_cands or dst_ok == {"*"}
                ):
                    if not h and not (src_cands & dst_cands):
                        continue
                    feas.append(h)
            if feas:
                out[ph.index] = feas
        return out

    def _vh_sets(self, h: tuple[str, ...]) -> tuple[set[str], set[str]]:
        """ECU name sets admitted by v(h) for sender and receiver."""
        arch = self.arch
        if not h:
            return {"*"}, {"*"}  # same-ECU case handled by the caller
        if len(h) == 1:
            ecus = set(arch.media[h[0]].ecus)
            return set(ecus), set(ecus)
        first, second = arch.media[h[0]], arch.media[h[1]]
        last, before = arch.media[h[-1]], arch.media[h[-2]]
        src = set(first.ecus) - (set(first.ecus) & set(second.ecus))
        dst = set(last.ecus) - (set(last.ecus) & set(before.ecus))
        return src, dst

    def _vh_formula(
        self, ref: MsgRef, h: tuple[str, ...]
    ) -> BoolExpr:
        """The endpoint condition v(h) of section 4 as a formula."""
        task, msg = ref.resolve(self.tasks)
        target = self.tasks[msg.target]
        if not h:
            return self.a[task.name] == self.a[target.name]
        src_set, dst_set = self._vh_sets(h)
        src_idx = {self.ecu_index[p] for p in src_set}
        dst_idx = {self.ecu_index[p] for p in dst_set}
        return And(
            self._alloc_in(task, src_idx), self._alloc_in(target, dst_idx)
        )

    def _msg_priorities(self) -> None:
        """Unique constant priorities, deadline-monotonic over end-to-end
        message deadlines with a deterministic tie-break (section 2:
        'each message is assigned a unique priority')."""
        ordered = sorted(
            self.msg_refs,
            key=lambda ref: (
                ref.resolve(self.tasks)[1].deadline,
                ref.sender,
                ref.index,
            ),
        )
        self.msg_rank = {ref: rank for rank, ref in enumerate(ordered)}

    def _build_messages(self) -> None:
        if not self.msg_refs:
            return
        self._msg_priorities()
        s = self.solver
        arch = self.arch
        media = arch.medium_names()
        feasible: dict[MsgRef, dict[int, list[tuple[str, ...]]]] = {}

        # --- per-message structural variables --------------------------
        for ref in self.msg_refs:
            task, msg = ref.resolve(self.tasks)
            feas = self._feasible_subpaths(ref)
            if not feas:
                raise ValueError(
                    f"message {ref} cannot be routed on this architecture"
                )
            feasible[ref] = feas
            nclos = len(self.closures)
            pf = s.int_var(f"pf[{ref}]", 0, nclos - 1)
            self.pf[ref] = pf
            s.require(Or(*[pf == l for l in sorted(feas)]))
            for k in media:
                self.k_use[(ref, k)] = s.bool_var(f"K[{ref},{k}]")

            # eq. 14: closure choice fixes a unique usable sub-path.
            for l, subs in sorted(feas.items()):
                ph = self.closures[l]
                disjuncts = []
                for h in subs:
                    used = set(h)
                    pattern = [
                        self.k_use[(ref, k)]
                        if k in used
                        else Not(self.k_use[(ref, k)])
                        for k in media
                    ]
                    disjuncts.append(And(*pattern, self._vh_formula(ref, h)))
                s.require(Implies(pf == l, Or(*disjuncts)))
            # Unusable closures were excluded from pf's domain above.

        # --- local deadlines, gateway cost, jitter ----------------------
        for ref in self.msg_refs:
            task, msg = ref.resolve(self.tasks)
            feas = feasible[ref]
            used_media = sorted(
                {k for subs in feas.values() for h in subs for k in h}
            )
            dl_terms: list[IntExpr] = []
            for k in used_media:
                kk = arch.media[k]
                dl = s.int_var(f"dl[{ref},{k}]", 0, msg.deadline)
                self.local_dl[(ref, k)] = dl
                dl_terms.append(dl)
                gw = s.int_var(f"gw[{ref},{k}]", 0, kk.gateway_service)
                self.gw_cost[(ref, k)] = gw
                dl_terms.append(gw)
                ku = self.k_use[(ref, k)]
                s.require(Implies(Not(ku), dl == 0))
                s.require(Implies(Not(ku), gw == 0))
            if dl_terms:
                s.require(
                    _sum_exprs(dl_terms) <= msg.deadline,
                    guard=self._obligation_guard(f"msg-deadline:{ref}"),
                    label=f"msg-deadline:{ref}",
                )
            # Gateway cost: charged on every used medium except the first
            # of the chosen closure (crossings = used media - 1).
            for l, subs in sorted(feas.items()):
                ph = self.closures[l]
                start = ph.start
                for k in used_media:
                    gw = self.gw_cost[(ref, k)]
                    kk = arch.media[k]
                    if k == start:
                        s.require(Implies(self.pf[ref] == l, gw == 0))
                    elif k in ph.longest:
                        s.require(
                            Implies(
                                And(self.pf[ref] == l, self.k_use[(ref, k)]),
                                gw == kk.gateway_service,
                            )
                        )
            # Jitter inheritance along the chosen closure's path order.
            jit_hi = task.release_jitter + msg.deadline
            for k in used_media:
                jv = s.int_var(f"J[{ref},{k}]", 0, jit_hi)
                self.msg_jitter[(ref, k)] = jv
            for l, subs in sorted(feas.items()):
                ph = self.closures[l]
                h_long = ph.longest
                for pos, k in enumerate(h_long):
                    if k not in set(used_media):
                        continue
                    expr: IntExpr = IntConst(task.release_jitter)
                    for prev in h_long[:pos]:
                        beta = arch.media[prev].transmission_ticks(
                            msg.size_bits
                        )
                        expr = expr + self.local_dl[(ref, prev)] - beta
                    s.require(
                        Implies(
                            And(self.pf[ref] == l, self.k_use[(ref, k)]),
                            self.msg_jitter[(ref, k)] == expr,
                        )
                    )
            if self.config.pin_unused:
                for k in used_media:
                    s.require(
                        Implies(
                            Not(self.k_use[(ref, k)]),
                            self.msg_jitter[(ref, k)] == 0,
                        )
                    )

        # --- per-medium sending ECU and response-time variables ---------
        # Two phases: declare every (message, medium) variable first, so
        # the interference equations of any message can reference the
        # send/jitter variables of every other message.
        self._feasible = feasible
        self._media_of: dict[MsgRef, list[str]] = {
            ref: sorted(
                {kk for subs in feasible[ref].values() for h in subs
                 for kk in h}
            )
            for ref in self.msg_refs
        }
        for ref in self.msg_refs:
            for k in self._media_of[ref]:
                self._declare_msg_medium_vars(ref, k, feasible[ref])
        for ref in self.msg_refs:
            for k in self._media_of[ref]:
                self._build_msg_on_medium(ref, k)

    def _declare_msg_medium_vars(
        self,
        ref: MsgRef,
        kname: str,
        feas: dict[int, list[tuple[str, ...]]],
    ) -> None:
        s = self.solver
        arch = self.arch
        k = arch.media[kname]
        task, msg = ref.resolve(self.tasks)
        ku = self.k_use[(ref, kname)]

        # Sending ECU on this medium: the task's ECU when the medium is
        # the first hop, else the upstream gateway (fixed per closure).
        ecu_ids = sorted(self.ecu_index[p] for p in k.ecus)
        send = s.int_var(f"send[{ref},{kname}]", min(ecu_ids), max(ecu_ids))
        self.send_ecu[(ref, kname)] = send
        for idx in range(min(ecu_ids), max(ecu_ids) + 1):
            if idx not in ecu_ids:
                s.require(send != idx)
        for l in sorted(feas):
            ph = self.closures[l]
            if kname not in ph.longest:
                continue
            pos = ph.longest.index(kname)
            guard = And(self.pf[ref] == l, ku)
            if pos == 0:
                s.require(Implies(guard, send == self.a[task.name]))
            else:
                gw = arch.gateway_between(ph.longest[pos - 1], kname)
                assert gw is not None
                s.require(Implies(guard, send == self.ecu_index[gw]))

        # Response-time variable; only meaningful when the medium is used.
        self.msg_resp[(ref, kname)] = s.int_var(
            f"rm[{ref},{kname}]", 0, msg.deadline
        )

    def _build_msg_on_medium(self, ref: MsgRef, kname: str) -> None:
        s = self.solver
        arch = self.arch
        k = arch.media[kname]
        task, msg = ref.resolve(self.tasks)
        rho = k.transmission_ticks(msg.size_bits)
        ku = self.k_use[(ref, kname)]
        dl = self.local_dl[(ref, kname)]
        send = self.send_ecu[(ref, kname)]
        r = self.msg_resp[(ref, kname)]

        # Interference from higher-priority messages that can share this
        # medium.
        my_rank = self.msg_rank[ref]
        ic_terms: list[IntExpr] = [IntConst(rho)]
        for other in self.msg_refs:
            if other == ref or self.msg_rank[other] >= my_rank:
                continue
            # Other message can only interfere if it can use this medium.
            if kname not in self._media_of[other]:
                continue
            otask, omsg = other.resolve(self.tasks)
            orho = k.transmission_ticks(omsg.size_bits)
            i_ub = (msg.deadline + otask.release_jitter + omsg.deadline
                    ) // otask.period + 2
            cnt = s.int_var(f"Im[{ref},{other},{kname}]", 0, i_ub)
            ic = s.int_var(
                f"ic[{ref},{other},{kname}]",
                0,
                min(i_ub * orho, msg.deadline),
            )
            ic_terms.append(ic)
            both = And(ku, self.k_use[(other, kname)])
            if k.kind is MediumKind.TOKEN_RING:
                # Only messages queued on the same sending ECU interfere
                # directly (other slots are covered by the round time).
                both = And(
                    both, self.send_ecu[(other, kname)] == send
                )
            oj = self.msg_jitter[(other, kname)]
            prod = cnt * otask.period
            s.require(
                Implies(
                    both,
                    And(
                        prod >= r + oj,
                        prod < r + oj + otask.period,
                        ic == cnt * orho,
                    ),
                )
            )
            s.require(Implies(Not(both), And(cnt == 0, ic == 0)))

        msg_guard = self._obligation_guard(f"msg-deadline:{ref}")
        if k.kind is MediumKind.CAN:
            if k.nonpreemptive_blocking:
                # One lower-priority frame may already occupy the wire:
                # b >= rho_o for every lower-priority message active on
                # this medium (Tindell's CAN blocking term; eq. 2 without
                # it is the paper's printed form).
                lower = []
                for other in self.msg_refs:
                    if other == ref or self.msg_rank[other] <= my_rank:
                        continue
                    if kname not in self._media_of[other]:
                        continue
                    otask, omsg = other.resolve(self.tasks)
                    lower.append(
                        (other, k.transmission_ticks(omsg.size_bits))
                    )
                if lower:
                    b = s.int_var(
                        f"B[{ref},{kname}]", 0, max(orho for _, orho in lower)
                    )
                    ic_terms.append(b)
                    for other, orho in lower:
                        s.require(
                            Implies(
                                And(ku, self.k_use[(other, kname)]),
                                b >= orho,
                            )
                        )
                    if self.config.pin_unused:
                        s.require(Implies(Not(ku), b == 0))
            s.require(
                Implies(ku, r == _sum_exprs(ic_terms)), guard=msg_guard,
                label=f"msg-deadline:{ref}",
            )
        else:
            # TDMA blocking: Imb rounds, each paying (Lambda - own slot).
            trt = self.trt[kname]
            lo, hi = self._slot_bounds(kname)
            osl = s.int_var(f"osl[{ref},{kname}]", lo, hi)
            for p in k.ecus:
                s.require(
                    Implies(
                        And(ku, send == self.ecu_index[p]),
                        osl == self.slot[(kname, p)],
                    )
                )
                # The frame (plus slot overhead) must fit the slot.
                s.require(
                    Implies(
                        And(ku, send == self.ecu_index[p]),
                        self.slot[(kname, p)] >= rho + k.slot_overhead,
                    )
                )
            imb_ub = max(1, -((-msg.deadline) // (lo * len(k.ecus))))
            imb = s.int_var(f"Imb[{ref},{kname}]", 0, imb_ub)
            block = s.int_var(
                f"blk[{ref},{kname}]", 0, msg.deadline
            )
            prod = imb * trt
            s.require(
                Implies(
                    ku,
                    And(
                        prod >= r,
                        prod < r + trt,
                        block == imb * (trt - osl),
                        r == _sum_exprs(ic_terms + [block]),
                    ),
                ),
                guard=msg_guard,
                label=f"msg-deadline:{ref}",
            )
            if self.config.pin_unused:
                s.require(Implies(Not(ku), And(imb == 0, block == 0)))

        # Local deadline check (section 4) and unused pinning.
        s.require(
            Implies(ku, r <= dl), guard=msg_guard,
            label=f"msg-deadline:{ref}",
        )
        if self.config.pin_unused:
            s.require(Implies(Not(ku), r == 0))

    # ------------------------------------------------------------------
    # Model decoding
    # ------------------------------------------------------------------

    def decode(self) -> Allocation:
        """Read the last SAT model back into a concrete Allocation."""
        s = self.solver
        task_ecu = {
            t.name: self.ecu_names[s.value(self.a[t.name])]
            for t in self.tasks
        }
        task_prio = self._decode_priorities()
        message_path: dict[MsgRef, tuple[str, ...]] = {}
        local_deadline: dict[tuple[MsgRef, str], int] = {}
        for ref in self.msg_refs:
            l = s.value(self.pf[ref])
            ph = self.closures[l]
            used = [
                k
                for k in ph.longest
                if (ref, k) in self.k_use
                and s.value_bool(self.k_use[(ref, k)])
            ]
            path = tuple(used)
            message_path[ref] = path
            for k in path:
                local_deadline[(ref, k)] = s.value(self.local_dl[(ref, k)])
        slot_ticks = {
            key: s.value(var) for key, var in self.slot.items()
        }
        return Allocation(
            task_ecu=task_ecu,
            task_prio=task_prio,
            message_path=message_path,
            slot_ticks=slot_ticks,
            local_deadline=local_deadline,
            msg_prio=dict(self.msg_rank),
        )

    def _decode_priorities(self) -> dict[str, int]:
        """Total priority order: deadline-monotonic with the model's
        tie-break values inside equal-deadline groups."""
        s = self.solver

        def higher(x: str, y: str) -> bool:
            """True when x has higher priority than y."""
            tx, ty = self.tasks[x], self.tasks[y]
            if tx.deadline != ty.deadline:
                return tx.deadline < ty.deadline
            key = (min(x, y), max(x, y))
            val = s.value_bool(self.tie_break[key])
            # tie_break true means "first-named has higher priority".
            return val if x == key[0] else not val

        names = self.tasks.names()
        # Insertion sort with the (transitive) comparator.
        ordered: list[str] = []
        for n in names:
            pos = len(ordered)
            for idx, m in enumerate(ordered):
                if higher(n, m):
                    pos = idx
                    break
            ordered.insert(pos, n)
        return {n: rank for rank, n in enumerate(ordered)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def formula_size(self) -> dict:
        """The paper's complexity metrics (Var. / Lit. columns)."""
        return self.solver.formula_size()

    def encode_stats(self) -> dict:
        """Cross-layer encoding instrumentation (hash-consing, simplify,
        triplet, blast counters and timings) as a JSON-ready dict; see
        :class:`repro.arith.stats.EncodeStats`."""
        return self.solver.encode_stats().to_dict()

    def to_dimacs(self, out) -> None:
        """Dump the bit-blasted instance in DIMACS CNF (PB constraints
        appear as comment lines; use :meth:`to_opb` for a lossless dump).
        """
        from repro.sat.dimacs import dump_solver

        dump_solver(self.solver.sat, out)

    def to_opb(self, out) -> None:
        """Dump the instance in OPB format (clauses as >=1 constraints,
        PB constraints natively) -- the exchange format of PB solvers
        like the paper's GOBLIN."""
        from repro.pb.constraint import PBConstraint
        from repro.pb.opb import OpbProblem, write_opb

        sat = self.solver.sat
        constraints = [
            PBConstraint(list(c.lits), [1] * len(c.lits), 1)
            for c in sat.clauses
        ]
        constraints += [
            PBConstraint(list(p.lits), list(p.coefs), p.bound)
            for p in sat.pbs
        ]
        write_opb(OpbProblem(sat.nvars, constraints, None), out)
