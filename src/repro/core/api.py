"""The unified solve API: one request object, one report, one exit-code map.

Historically every solve entry point grew its own kwarg set --
``Allocator.minimize(objective, time_limit=, reuse_learned=, budget=,
checkpoint=, certify=)``, ``SolveSupervisor(..., heuristics=, verify=)``,
``solve_portfolio(..., cell_timeout=, retries=)`` -- and the CLI
re-invented all of them as flags.  :class:`SolveRequest` is the single
carrier for all solve options; every public entry point accepts one
(``request=``), and the CLI builds a request from argv so library and
command line cannot drift apart.  Every entry point -- ``Allocator``,
``SolveSupervisor``, ``solve_portfolio`` -- accepts *only* a request:
the legacy kwarg shims (and the deprecated ``warm_start`` /
``warm_allocation`` request fields) are gone, and passing one raises
:class:`TypeError` with a migration hint (:func:`reject_legacy`).
Interval hints go through :attr:`SolveRequest.bounds` providers.

:class:`BoundsProvider` / :class:`BoundsReport` are the one sanctioned
channel for search-interval hints: warm caches, heuristic baselines and
the relaxation sidecar (:mod:`repro.bounds`) all propose bounds through
it, the allocator audits every proposal (witnesses via the independent
analysis, lower bounds via :func:`repro.certify.bounds.
audit_lower_certificate`) and only audited bounds may shrink the binary
search's certified interval; everything else degrades to a probe-order
hint.  See ``docs/BOUNDS.md``.

:class:`SolveReport` is the matching result-side view: a uniform
status/cost/exit-code summary over :class:`~repro.core.allocator.
AllocationResult` and :class:`~repro.robust.supervisor.SupervisedResult`.

:class:`ExitCode` normalizes the CLI process exit codes (previously
scattered literals)::

    0  OK                   answer produced (optimal / bound / feasible)
    1  ERROR                usage or internal error
    2  INFEASIBLE           certified infeasibility (solve/check/diagnose)
    3  CERTIFICATE_FAILED   --certify was asked and a certificate failed
    4  BUDGET_EXHAUSTED     budget/limits expired before anything usable
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum

__all__ = [
    "ExitCode",
    "BoundsReport",
    "BoundsProvider",
    "SolveRequest",
    "SolveReport",
    "reject_legacy",
    "solve",
]


class ExitCode(IntEnum):
    """Normalized CLI exit codes (see module docstring)."""

    OK = 0
    ERROR = 1
    INFEASIBLE = 2
    CERTIFICATE_FAILED = 3
    BUDGET_EXHAUSTED = 4


@dataclass
class BoundsReport:
    """One provider's proposal for the cost-search interval.

    Nothing in a report is trusted as stated: the allocator re-audits
    every claim before it may narrow the certified search interval
    (:func:`repro.bounds.providers.resolve_bounds`).

    - ``upper`` with a ``witness`` (a JSON allocation payload,
      :func:`repro.io.allocation_to_dict`): the witness is re-checked by
      the *independent* analysis; when it passes, its recomputed cost --
      not the claimed ``upper`` -- becomes a known-achievable upper
      bound.  Without a witness (or when the audit fails) ``upper`` is
      only a probe-order hint.
    - ``lower`` with a ``certificate`` (:class:`repro.certify.bounds.
      BoundCertificate`): the certificate's arithmetic is recomputed
      from the model by :func:`repro.certify.bounds.
      audit_lower_certificate`; a passing audit makes ``lower`` a
      certified floor, a failing one demotes it to a hint.  A ``lower``
      without certificate is always just a hint.
    """

    #: Human-readable provider name for provenance / stats.
    provider: str = "bounds"
    #: Claimed lower bound on the optimum (certified only via audit).
    lower: int | None = None
    #: Claimed achievable cost (trusted only via witness audit).
    upper: int | None = None
    #: JSON allocation payload achieving ``upper`` (or None).
    witness: dict | None = None
    #: Machine-checkable certificate for ``lower`` (or None).
    certificate: object | None = None
    #: False when ``upper`` came from a non-unique cost encoding
    #: (``sum_resp``: the audit proves only an upper bound, see
    #: :func:`repro.certify.audit.independent_cost`); such a report must
    #: never be promoted to a trusted *lower* bound.
    exact: bool = True
    #: Wall time the provider spent (filled by the resolver when 0).
    seconds: float = 0.0


class BoundsProvider:
    """Protocol for search-interval providers (duck-typed).

    Implementations return a :class:`BoundsReport` -- or None when they
    have nothing to offer -- given the system and the request.  They
    must never touch SAT-solver state: bounds are audited against the
    model only, and a provider crash is treated as "no proposal".
    Providers ride on :attr:`SolveRequest.bounds`.
    """

    name = "bounds"

    def propose(self, tasks, arch, request) -> "BoundsReport | None":
        raise NotImplementedError


@dataclass(frozen=True)
class SolveRequest:
    """Everything one allocation solve may be asked to do.

    The request is immutable (``frozen``); derive variants with
    :meth:`merged` or :func:`dataclasses.replace`.  All fields have
    defaults, so ``SolveRequest(objective=MinimizeSumTRT())`` is a
    complete request.
    """

    #: Cost function (:mod:`repro.core.objectives`); None = feasibility.
    objective: object | None = None
    #: :class:`repro.core.config.EncoderConfig`; None = defaults.
    config: object | None = None
    #: Anytime wall-clock limit, checked between probes.
    time_limit: float | None = None
    #: Keep learnt clauses between probes (the paper's section-7 reuse).
    reuse_learned: bool = True
    #: Re-check the final allocation with the independent analysis.
    verify: bool = True
    #: :class:`repro.robust.Budget` bounding the whole search.
    budget: object | None = None
    #: :class:`repro.robust.SearchCheckpoint` (or path) to persist/resume.
    checkpoint: object | None = None
    #: Certify every probe (DRUP proof check / witness audit).
    certify: bool = False
    #: ``auto`` / ``incremental`` / ``rebuild`` / ``speculative``.
    strategy: str = "auto"
    #: Worker processes for the speculative parallel search (<=1 = off).
    processes: int = 1
    #: Concurrent speculative probes (groups); 0 = derive from processes.
    speculate: int = 0
    #: CDCL configurations racing each probe (clause-sharing portfolio).
    race: int = 1
    #: Exchange short learnt clauses between racers of one probe.
    share_clauses: bool = True
    #: Maximum length of an exchanged learnt clause.
    share_max_len: int = 8
    #: Watchdog timeout per worker cell (portfolio baselines).
    cell_timeout: float | None = None
    #: Respawn attempts for a crashed probe worker / sweep cell.
    retries: int = 1
    #: Heuristic fallback chain for supervised solves.
    heuristics: tuple = ("greedy", "annealing")
    #: :class:`repro.chaos.ChaosSchedule` of deterministic fault
    #: injection (picklable; worker processes install it too); None = off.
    chaos: object | None = None
    #: Persist the certifier's DRUP proof to this path as crash-safe
    #: length-prefixed records (:mod:`repro.certify.proofio`); implies
    #: nothing unless ``certify`` is set.  Sequential strategies only.
    #: A *directory* path (existing, or ending in the path separator)
    #: namespaces the spool file by request fingerprint, so concurrent
    #: solves sharing one proof directory never collide.
    proof_log: str | None = None
    #: Bounds providers consulted before the binary search starts: each
    #: :class:`BoundsProvider` proposes an interval, the allocator
    #: audits every proposal, and the tightest *audited* bounds seed
    #: ``bin_search`` (unaudited ones degrade to probe-order hints).
    #: Bounds never change the certified answer -- only the probe
    #: sequence -- so like the old warm hints they are excluded from
    #: :meth:`fingerprint`.
    bounds: tuple = ()
    #: How the providers run: ``"auto"`` resolves them synchronously
    #: before the search; ``"race"`` runs them as a sidecar racer of the
    #: parallel engine whose audited bounds tighten the shared interval
    #: mid-flight (sequential solves treat ``race`` as ``auto``);
    #: ``"off"`` ignores all providers.
    bounds_mode: str = "auto"
    #: :class:`repro.governor.GovernorConfig` of resource limits (disk
    #: quota over the run's state files, memory watermark with graduated
    #: degradation); picklable, installed for the duration of the solve.
    #: None = ungoverned.  Like ``chaos``, excluded from
    #: :meth:`fingerprint` -- governance changes how a run degrades,
    #: never its answer.
    governor: object | None = None
    #: Append lifecycle events (supervisor stage transitions, with
    #: timestamps and reasons) to this JSONL flight-recorder log
    #: (:class:`repro.robust.flight.FlightRecorder`); None = off.
    flight_log: str | None = None

    def merged(self, **updates) -> "SolveRequest":
        """A copy with ``updates`` applied."""
        return replace(self, **updates)

    def fingerprint(self) -> str:
        """Content address of the *answer-relevant* solve options.

        The experiment fabric keys sweep cells on this (see
        :func:`repro.fabric.jobs.job_key`), so only fields that can
        change the reported answer participate: the objective (type and
        parameters), the encoder configuration, the limits that decide
        how far the search may run, and ``certify``.  Execution
        topology (``processes``/``speculate``/``race``) is excluded on
        purpose -- the parallel engine's contract is a bit-identical
        certified optimum -- as are persistence, fault-injection and
        resource-governance knobs (``checkpoint``, ``proof_log``,
        ``chaos``, ``governor``) and the serving hints (``bounds``,
        ``bounds_mode``, ``flight_log``), which never change the
        answer, only how it survives or how fast it arrives.
        """
        import hashlib

        from repro.robust.checkpoint import canonical_blob

        def public_vars(obj) -> dict:
            return {k: v for k, v in vars(obj).items()
                    if not k.startswith("_")}

        objective = None
        if self.objective is not None:
            objective = {"kind": type(self.objective).__name__,
                         **public_vars(self.objective)}
        config = None
        if self.config is not None:
            config = {"kind": type(self.config).__name__,
                      **public_vars(self.config)}
        budget = None
        if self.budget is not None:
            budget = {k: v for k, v in public_vars(self.budget).items()
                      if isinstance(v, (int, float, str, bool, type(None)))}
        blob = canonical_blob({
            "objective": objective,
            "config": config,
            "time_limit": self.time_limit,
            "budget": budget,
            "certify": self.certify,
        })
        return hashlib.sha256(b"REPRO-REQ v1\x00" + blob).hexdigest()[:16]

    @property
    def parallel(self) -> bool:
        """Whether this request asks for the parallel solve engine."""
        if self.strategy == "speculative":
            return True
        return self.strategy == "auto" and (
            self.processes > 1 or self.race > 1
        )

    def effective_groups(self) -> int:
        """Number of concurrent speculative probes (groups)."""
        if self.speculate > 0:
            return self.speculate
        return max(1, self.processes // max(1, self.race))

    def effective_racers(self) -> int:
        """Racers per probe group."""
        return max(1, self.race)


#: The removed warm-hint fields, rejected by name with a pointer at the
#: sanctioned replacement (a HintBoundsProvider on ``bounds``).
_REMOVED_WARM_FIELDS = ("warm_start", "warm_allocation")

_generated_request_init = SolveRequest.__init__


def _checked_request_init(self, *args, **kwargs):
    removed = sorted(set(kwargs) & set(_REMOVED_WARM_FIELDS))
    if removed:
        names = ", ".join(removed)
        raise TypeError(
            f"SolveRequest no longer has the deprecated {names} "
            f"field(s); wrap the hint in a bounds provider instead, "
            f"e.g. SolveRequest(bounds=(HintBoundsProvider(upper=cost, "
            f"witness=allocation),)) -- see docs/BOUNDS.md"
        )
    _generated_request_init(self, *args, **kwargs)


SolveRequest.__init__ = _checked_request_init


def reject_legacy(caller: str, legacy: dict) -> None:
    """The legacy per-entry-point kwarg shims are gone: fail loud,
    point forward.  ``legacy`` holds only the kwargs the caller
    actually passed, so request-only calls stay silent."""
    if legacy:
        names = ", ".join(sorted(legacy))
        raise TypeError(
            f"{caller} no longer accepts the legacy solve kwargs "
            f"({names}); put them on a SolveRequest instead, e.g. "
            f"{caller}(request=SolveRequest(objective=..., "
            f"{sorted(legacy)[0]}=...)) -- see docs/SOLVER.md"
        )


@dataclass
class SolveReport:
    """Uniform result-side view over the solve entry points."""

    #: ``optimal`` / ``upper_bound`` / ``feasible`` / ``heuristic`` /
    #: ``infeasible`` / ``unknown``.
    status: str
    feasible: bool = False
    cost: int | None = None
    proven: bool = False
    allocation: object | None = None
    certificate: object | None = None
    #: The underlying AllocationResult / SupervisedResult.
    result: object | None = None
    #: Stage log of a supervised solve (empty otherwise).
    stages: list = field(default_factory=list)
    #: Bounds provenance of the search (providers consulted, audited
    #: interval, probes the bounds injected); empty when no provider
    #: ran.  Mirrors ``OptimizationOutcome.bounds``.
    bounds: dict = field(default_factory=dict)

    @property
    def exit_code(self) -> ExitCode:
        """The normalized CLI exit code for this outcome."""
        if self.certificate is not None and not self.certificate.all_verified:
            return ExitCode.CERTIFICATE_FAILED
        if self.status == "infeasible":
            return ExitCode.INFEASIBLE
        if self.status == "unknown":
            return ExitCode.BUDGET_EXHAUSTED
        return ExitCode.OK

    @classmethod
    def from_allocation(cls, res, request=None) -> "SolveReport":
        """Summarize an :class:`~repro.core.allocator.AllocationResult`."""
        status = res.status
        if status == "optimal" and getattr(request, "objective", 1) is None:
            status = "feasible"
        outcome = getattr(res, "outcome", None)
        return cls(
            status=status,
            feasible=res.feasible,
            cost=res.cost,
            proven=res.proven,
            allocation=res.allocation,
            certificate=res.certificate,
            result=res,
            bounds=dict(getattr(outcome, "bounds", None) or {}),
        )

    @classmethod
    def from_supervised(cls, sup) -> "SolveReport":
        """Summarize a :class:`~repro.robust.supervisor.SupervisedResult`."""
        inner = sup.result
        outcome = getattr(inner, "outcome", None)
        return cls(
            status=sup.status,
            feasible=sup.allocation is not None,
            cost=sup.cost,
            proven=sup.proven,
            allocation=sup.allocation,
            certificate=getattr(inner, "certificate", None),
            result=sup,
            stages=list(sup.stages),
            bounds=dict(getattr(outcome, "bounds", None) or {}),
        )


def solve(tasks, arch, request: SolveRequest) -> SolveReport:
    """One-call solve honoring every :class:`SolveRequest` option.

    Routes to the supervised escalation chain when a budget is given
    (graceful degradation), otherwise straight to the
    :class:`~repro.core.allocator.Allocator` (which itself dispatches to
    the speculative parallel engine when the request asks for it).
    """
    from repro.core.allocator import Allocator

    if request.objective is None:
        res = Allocator(tasks, arch, request.config).find_feasible(
            request=request
        )
        return SolveReport.from_allocation(res, request)
    if request.budget is not None:
        from repro.robust.supervisor import SolveSupervisor

        sup = SolveSupervisor(tasks, arch, request=request).solve()
        return SolveReport.from_supervised(sup)
    res = Allocator(tasks, arch, request.config).minimize(request=request)
    return SolveReport.from_allocation(res, request)
