"""Warm-start cache: reuse optima across related requests.

Production allocation traffic is heavily repetitive: the same scenario
is re-solved after small perturbations (a task's WCET bumped, a message
rerouted), and often re-solved *unchanged* (a retry, a second client).
The cache exploits both without ever weakening the answer:

- the key is ``(scenario, request-fingerprint, code-fingerprint)``:

  * *scenario* is the client's stable label for a family of related
    systems (defaults to the task-set name),
  * *request fingerprint* is :meth:`repro.core.api.SolveRequest.
    fingerprint` of the **identity options** (objective, encoder
    config, certify) -- deadlines and budgets are excluded, they never
    change the optimum,
  * *code fingerprint* is :func:`repro.fabric.jobs.code_fingerprint`
    over the package sources, so a server restarted onto changed solver
    code can never serve (or warm-start from) a stale optimum computed
    by different code;

- a hit whose stored *system digest* matches the incoming system is an
  **exact** hit; otherwise the stored optimum is only a **warm hint**:
  the server wraps it in a ``repro.bounds.HintBoundsProvider`` (cached
  optimum as the claimed upper, cached allocation as the witness) on
  ``SolveRequest.bounds``, and the allocator re-audits the witness with
  the independent analysis before trusting anything -- a probe-*count*
  change, never a correctness shortcut: the binary search still
  certifies the optimum (bit-identical ``{cost, proven, status}``
  envelope, asserted in tests).

Entries are LRU-evicted.  ``serve.cache`` is a named chaos site: an
injected fault degrades a lookup to a miss and a store to a no-op --
the cache can make the server faster, never wrong and never down.

The cache is also a **memory-watermark citizen**: every entry carries
an approximate byte size (JSON length of envelope + witness), summed by
:meth:`WarmCache.memory_bytes`, and :meth:`WarmCache.shrink` evicts the
LRU half on demand -- the ``shrink`` response of the resource governor
(:mod:`repro.governor`).  Shrinking only ever costs probe count on
future requests, never correctness.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.chaos import chaos_point

__all__ = ["WarmCache", "WarmEntry"]


@dataclass(frozen=True)
class WarmEntry:
    """One cached optimum for a scenario/request/code key."""

    optimum: int
    envelope: dict
    system_digest: str
    #: JSON allocation payload of the optimum (a warm-start witness for
    #: perturbed requests); None when the solve produced no allocation.
    allocation: dict | None = None
    #: Approximate in-memory footprint (JSON length), for the governor.
    approx_bytes: int = 0

    def exact_for(self, system_digest: str) -> bool:
        return self.system_digest == system_digest


class WarmCache:
    """Thread-safe LRU of proven optima, keyed to be staleness-proof."""

    def __init__(self, size: int = 64):
        if size < 1:
            raise ValueError("cache size must be >= 1")
        self.size = size
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, WarmEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.faults = 0
        self.shrinks = 0

    @staticmethod
    def _key(scenario: str, request_fp: str, code_fp: str | None) -> tuple:
        if code_fp is None:
            from repro.fabric.jobs import code_fingerprint

            code_fp = code_fingerprint()
        return (scenario, request_fp, code_fp)

    def lookup(
        self, scenario: str, request_fp: str, code_fp: str | None = None
    ) -> WarmEntry | None:
        """The cached entry, or None.  Faults degrade to a miss."""
        try:
            chaos_point("serve.cache")
            key = self._key(scenario, request_fp, code_fp)
        except OSError:
            self.faults += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(
        self,
        scenario: str,
        request_fp: str,
        optimum: int,
        envelope: dict,
        system_digest: str,
        code_fp: str | None = None,
        allocation: dict | None = None,
    ) -> None:
        """Record a *proven* optimum.  Faults degrade to a no-op."""
        try:
            chaos_point("serve.cache")
            key = self._key(scenario, request_fp, code_fp)
        except OSError:
            self.faults += 1
            return
        try:
            approx = len(json.dumps(envelope, default=str)) + (
                len(json.dumps(allocation, default=str))
                if allocation is not None else 0
            ) + 128  # key/tuple/dataclass overhead, roughly
        except (TypeError, ValueError):
            approx = 1024
        entry = WarmEntry(
            optimum=optimum, envelope=dict(envelope),
            system_digest=system_digest, allocation=allocation,
            approx_bytes=approx,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)

    def memory_bytes(self) -> int:
        """Approximate bytes held by cached entries (a governor memory
        source)."""
        with self._lock:
            return sum(e.approx_bytes for e in self._entries.values())

    def shrink(self) -> int:
        """Evict the least-recently-used half of the entries; returns
        the approximate bytes released.  The governor's ``shrink``
        response -- a probe-count cost on future requests, never a
        correctness change."""
        released = 0
        with self._lock:
            drop = len(self._entries) // 2
            for _ in range(drop):
                _key, entry = self._entries.popitem(last=False)
                released += entry.approx_bytes
            if drop:
                self.shrinks += 1
        return released

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.size,
                "hits": self.hits,
                "misses": self.misses,
                "faults": self.faults,
                "shrinks": self.shrinks,
                "approx_bytes": sum(
                    e.approx_bytes for e in self._entries.values()
                ),
            }
