"""Allocation-as-a-service: a resilient long-lived solve server.

The paper's solver answers one question per process; this package
serves the same :class:`repro.core.api.SolveRequest` /
:class:`~repro.core.api.SolveReport` contract as a long-lived
multi-tenant service with production robustness semantics:

- :mod:`repro.serve.server` -- the asyncio :class:`AllocationServer`
  (deadline propagation, drain/resume, the JSON-lines TCP front end),
- :mod:`repro.serve.queue` -- bounded per-tenant admission queues with
  weighted-fair (stride) dequeue,
- :mod:`repro.serve.breaker` -- the circuit breaker that trips the
  compiled SAT core back to the pure reference core on repeated faults,
- :mod:`repro.serve.cache` -- the warm-start LRU reusing proven optima
  across related requests (never across code changes),
- :mod:`repro.serve.responses` -- the typed terminal
  :class:`ServeResponse` every request gets exactly one of,
- :mod:`repro.serve.client` -- wire-protocol client helpers.

``docs/SERVING.md`` is the operator manual; the ``serve.*`` chaos sites
(:mod:`repro.chaos`) and ``tests/test_serve_torture.py`` keep the
one-typed-response invariant honest under injected faults.
"""

from repro.serve.breaker import BackendBreaker
from repro.serve.cache import WarmCache, WarmEntry
from repro.serve.client import request, request_many_sync, request_sync
from repro.serve.queue import TenantQueues
from repro.serve.responses import KINDS, ServeResponse
from repro.serve.server import (
    AllocationServer,
    ServeConfig,
    ServeJob,
    system_digest,
)

__all__ = [
    "AllocationServer",
    "ServeConfig",
    "ServeJob",
    "ServeResponse",
    "KINDS",
    "TenantQueues",
    "BackendBreaker",
    "WarmCache",
    "WarmEntry",
    "system_digest",
    "request",
    "request_sync",
    "request_many_sync",
]
