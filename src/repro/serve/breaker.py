"""Circuit breaker around the compiled SAT propagation core.

The PR 7 ``fast`` core is bit-identical to the pure-Python reference by
construction, but it is still native code loaded through ``ctypes`` --
a broken toolchain, a bad rebuild, or a latent platform issue surfaces
as solver-side exceptions.  A long-lived server must not keep feeding
requests into a faulting backend, and must also not stay degraded
forever after a transient problem.  Classic circuit breaker:

- **closed** (healthy): solves run on whatever backend the process
  default resolves to.  Backend-attributed failures increment a
  consecutive-failure counter; any success resets it.
- **open** (tripped): after ``threshold`` consecutive failures on the
  ``fast`` core, the breaker flips the *process default* to ``pure``
  (:func:`repro.sat.core.set_default_backend`) so every subsequent
  solve uses the reference core, and records the reason.  In-flight
  solves are untouched -- backend choice is per-``Solver``-instance.
- **half-open** (probing): after ``cooldown`` seconds, the next
  :meth:`maybe_probe` runs :func:`repro.sat.core.probe_fast_backend`
  -- a tiny CNF solved end-to-end on an explicit ``fast``-backend
  solver.  A correct answer closes the breaker and restores the
  previous default; anything else re-opens it for another cooldown.

All transitions are recorded (state, reason, monotonic timestamps) and
optionally emitted to the server's flight recorder via ``on_event``.
The breaker is called from solver worker threads, so it carries its own
lock.
"""

from __future__ import annotations

import threading
import time

__all__ = ["BackendBreaker"]


class BackendBreaker:
    """Trip to the pure core after consecutive compiled-core faults."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        probe=None,
        clock=time.monotonic,
        on_event=None,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        from repro.sat.core import probe_fast_backend

        self.threshold = threshold
        self.cooldown = cooldown
        self._probe = probe if probe is not None else probe_fast_backend
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self.state = "closed"
        self.failures = 0
        self.reason: str | None = None
        self.opened_at: float | None = None
        self.trips = 0
        self.probes = 0
        #: Default backend name to restore when the probe passes.
        self._restore: str | None = None

    def _emit(self, event: str, **extra) -> None:
        if self._on_event is not None:
            try:
                self._on_event(event, **extra)
            except Exception:  # noqa: BLE001 - telemetry must not bite
                pass

    # ------------------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0

    def record_failure(self, reason: str, backend: str | None) -> bool:
        """Count one solve failure attributed to ``backend``.

        Only failures that happened while the compiled core was in play
        count -- a pure-core failure is a logic problem the breaker
        cannot route around.  Returns True when this failure tripped
        the breaker open.
        """
        from repro.sat.core import default_backend_name, set_default_backend

        with self._lock:
            if backend != "fast" or self.state == "open":
                return False
            self.failures += 1
            if self.failures < self.threshold:
                return False
            self.state = "open"
            self.trips += 1
            self.reason = reason
            self.opened_at = self._clock()
            self._restore = default_backend_name()
            set_default_backend("pure")
        self._emit(
            "breaker.open",
            reason=reason,
            failures=self.failures,
            restore=self._restore,
        )
        return True

    def maybe_probe(self) -> bool:
        """Half-open probe when the cooldown elapsed.

        Returns True when the breaker closed (compiled core restored).
        Called between solves from worker threads; cheap when closed or
        still cooling down.
        """
        from repro.sat.core import set_default_backend

        with self._lock:
            if self.state != "open":
                return False
            now = self._clock()
            if self.opened_at is not None and now - self.opened_at < self.cooldown:
                return False
            # Half-open: this thread owns the probe; others see "open"
            # with a refreshed window and stay on the pure core.
            self.opened_at = now
            self.probes += 1
        ok, reason = self._probe()
        with self._lock:
            if ok:
                self.state = "closed"
                self.failures = 0
                self.reason = None
                set_default_backend(self._restore)
        if ok:
            self._emit("breaker.close", restore=self._restore)
            return True
        self._emit("breaker.reopen", reason=reason)
        return False

    def status(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "threshold": self.threshold,
                "reason": self.reason,
                "trips": self.trips,
                "probes": self.probes,
            }
