"""Allocation-as-a-service: the resilient long-lived solve server.

``AllocationServer`` turns the one-shot :func:`repro.core.api.solve`
entry point into a multi-tenant service.  One asyncio event loop owns
admission (:class:`~repro.serve.queue.TenantQueues`) and dispatch; a
small pool of worker tasks runs the CPU-bound solves in threads via
``asyncio.to_thread``.  The robustness posture, end to end:

- **deadline propagation** -- a request's ``deadline`` (wall seconds)
  and ``conflict_budget`` become a :class:`repro.robust.Budget` threaded
  through the whole stack; expiry surfaces as a typed
  ``deadline_exceeded`` response, never a hang and never a silent
  partial answer (a usable anytime bound is served as ``ok`` with the
  honest ``upper_bound`` status).
- **admission control** -- bounded per-tenant queues with weighted-fair
  dequeue; a full queue sheds with ``overloaded`` + ``retry_after``,
  an oversized system is rejected at the door.
- **graceful degradation** -- a :class:`~repro.serve.breaker.
  BackendBreaker` trips the process to the pure propagation core after
  consecutive compiled-core faults and probes its way back.
- **resource governance** -- ``disk_quota``/``mem_watermark`` arm a
  process-wide :class:`repro.governor.Governor`: state files stay
  under quota (checkpoint generations evicted first, flight recorder
  rotated, proof spools condemned typed rather than truncated), and
  memory pressure degrades gradually -- learnt-DB reduction, warm-cache
  shrink, ``overloaded`` shedding, cooperative budget cancellation
  (see docs/GOVERNOR.md).  The TCP front end bounds frame length
  (``max_frame_bytes``) and read stalls (``read_timeout``) with typed
  ``error`` responses, so a hostile or broken client cannot pin a
  worker or crash a connection handler.
- **drain, don't drop** -- SIGTERM (or :meth:`drain`) stops admission,
  cancels in-flight budgets cooperatively (the per-probe checkpoints in
  ``state_dir/checkpoints/`` survive), answers every queued request
  with ``draining``, and lets workers finish.  A restarted server given
  the same ``state_dir`` resumes interrupted searches from their
  checkpoints on resubmission.
- **bounds composition** -- proven optima (and their allocations) land
  in a :class:`~repro.serve.cache.WarmCache`; a later request in the
  same scenario gets the cached entry as a ``HintBoundsProvider`` and,
  unless ``ServeConfig.bounds`` is ``"off"``, the relaxation sidecar
  (:class:`repro.bounds.RelaxationBoundsProvider`) as a second
  provider.  The allocator audits every proposal and the tightest
  audited bound wins (identical certified answer, fewer probes).

Every lifecycle event is appended to ``state_dir/serve-events.jsonl``
(:class:`repro.robust.FlightRecorder`), and the ``serve.*`` chaos sites
let the torture suite inject faults at every seam.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field

from repro import governor as governor_mod
from repro.chaos import chaos_point, install, uninstall
from repro.governor import Governor, GovernorConfig
from repro.robust.budget import Budget
from repro.robust.flight import FlightRecorder
from repro.serve.breaker import BackendBreaker
from repro.serve.cache import WarmCache
from repro.serve.queue import TenantQueues
from repro.serve.responses import ServeResponse

__all__ = ["ServeConfig", "ServeJob", "AllocationServer", "system_digest"]


def system_digest(tasks, arch) -> str:
    """Content digest of a system (tasks + architecture), for exact-hit
    detection and checkpoint keying."""
    from repro.io.json_codec import system_to_dict

    blob = json.dumps(
        system_to_dict(tasks, arch), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class ServeConfig:
    """Operator-side knobs of one :class:`AllocationServer`."""

    #: Durable state: checkpoints, flight recorder, chaos counters.
    state_dir: str
    workers: int = 2
    queue_depth: int = 8
    tenant_weights: dict = field(default_factory=dict)
    #: Deadline applied when a request names none (None = unlimited).
    default_deadline: float | None = None
    #: Reject systems with more tasks than this at admission.
    max_tasks: int | None = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    cache_size: int = 64
    #: Persist binary-search checkpoints (drain/resume needs this).
    keep_checkpoints: bool = True
    #: Certify answers even when the request does not ask for it.
    certify_default: bool = False
    #: Bounds providers composed into every solve: ``"auto"`` adds the
    #: relaxation sidecar next to the warm-cache hint (tightest audited
    #: bound wins), ``"off"`` serves warm-cache hints only.
    bounds: str = "auto"
    #: Chaos schedule installed process-wide for the server's lifetime.
    chaos: object | None = None
    #: Disk quota (bytes) over the server's state files -- checkpoints
    #: and the flight recorder; ``None`` = unlimited.  Enforced by a
    #: process-wide :class:`repro.governor.Governor` (docs/GOVERNOR.md).
    disk_quota: int | None = None
    #: Memory watermark (bytes): solver arenas + warm cache + queue
    #: backlog, with graduated responses (reduce/shrink/shed/cancel).
    mem_watermark: int | None = None
    #: Largest accepted JSON-lines frame on the TCP front end; an
    #: oversized frame gets a typed ``error`` response, never a raise.
    max_frame_bytes: int = 1 << 20
    #: Seconds a TCP connection may stall mid-read before it is closed,
    #: so a slow client cannot pin a connection handler (None = forever).
    read_timeout: float | None = None


@dataclass
class ServeJob:
    """One admitted request on its way through the queue."""

    id: str
    tenant: str
    scenario: str
    tasks: object
    arch: object
    digest: str
    #: Identity request: objective/config/certify only -- no budget, so
    #: the fingerprint is stable across deadlines (cache + checkpoint key).
    base_request: object
    identity_fp: str
    deadline_at: float | None
    conflict_budget: int | None
    certify: bool
    want_allocation: bool
    future: asyncio.Future
    submitted: float


#: Rough in-memory footprint assumed per queued (undispatched) job when
#: the governor computes memory pressure: parsed system + request + the
#: wire payload's transient copies.
_QUEUED_JOB_BYTES = 64 * 1024


class AllocationServer:
    """Long-lived multi-tenant front end over ``repro.core.api.solve``."""

    def __init__(self, config: ServeConfig):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.checkpoint_dir = os.path.join(config.state_dir, "checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.events_path = os.path.join(config.state_dir, "serve-events.jsonl")
        self.recorder = FlightRecorder(self.events_path, actor="serve")
        self.queues = TenantQueues(
            depth=config.queue_depth, weights=config.tenant_weights
        )
        self.cache = WarmCache(size=config.cache_size)
        self.breaker = BackendBreaker(
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            on_event=self.recorder.log,
        )
        self._seq = itertools.count(1)
        self._cond: asyncio.Condition | None = None
        self._workers: list[asyncio.Task] = []
        self._inflight: dict[str, Budget] = {}
        self._draining = False
        self._started = False
        self._recent_seconds: deque[float] = deque(maxlen=32)
        self._tcp: asyncio.AbstractServer | None = None
        self.governor: Governor | None = None
        gc = GovernorConfig(
            disk_quota=config.disk_quota,
            mem_watermark=config.mem_watermark,
        )
        if gc.enabled:
            self.governor = Governor(gc, recorder=self.recorder.log)
            self.governor.track("flight", self.events_path)
            self.governor.add_memory_source(
                "warm-cache", self.cache.memory_bytes
            )
            self.governor.add_memory_source(
                "serve-queue",
                lambda: len(self.queues) * _QUEUED_JOB_BYTES,
            )
            self.governor.add_shrinker("warm-cache", self.cache.shrink)
        self.stats = {
            "received": 0, "served": 0, "shed": 0,
            "deadline_exceeded": 0, "errors": 0, "drained": 0,
        }

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.config.chaos is not None:
            install(self.config.chaos)
        if self.governor is not None:
            governor_mod.install(self.governor)
        self._cond = asyncio.Condition()
        for i in range(max(1, self.config.workers)):
            self._workers.append(
                asyncio.create_task(self._worker(i), name=f"serve-worker-{i}")
            )
        self.recorder.log(
            "server.start",
            workers=len(self._workers),
            queue_depth=self.config.queue_depth,
            state_dir=self.config.state_dir,
        )

    async def start_tcp(self, host: str, port: int) -> tuple[str, int]:
        """Expose the JSON-lines protocol on a TCP socket."""
        self._tcp = await asyncio.start_server(
            self._handle_conn, host, port,
            # Stream limit = frame bound: an overlong line surfaces as
            # ValueError from readline(), answered as a typed error.
            limit=max(1024, self.config.max_frame_bytes),
        )
        sock = self._tcp.sockets[0].getsockname()
        self.recorder.log("server.listen", host=sock[0], port=sock[1])
        return sock[0], sock[1]

    async def drain(self) -> None:
        """Stop admission, interrupt in-flight solves cooperatively,
        answer everything queued, and wait for the workers.

        In-flight binary searches keep their per-probe checkpoints in
        ``state_dir/checkpoints/``; resubmitting the same request to a
        restarted server resumes them (asserted by the torture suite).
        """
        if not self._started or self._cond is None:
            return
        async with self._cond:
            if self._draining:
                return
            self._draining = True
            self._cond.notify_all()
        inflight = list(self._inflight.items())
        self.recorder.log(
            "drain.start",
            inflight=[rid for rid, _ in inflight],
            queued=len(self.queues),
        )
        try:
            chaos_point("serve.drain")
        except OSError as exc:
            # A fault during drain must never wedge shutdown: record it
            # and keep going -- the budgets below still get cancelled.
            self.recorder.log("drain.fault", error=str(exc))
        for _rid, budget in inflight:
            budget.expired_reason = "server draining"
        retry = self._retry_after()
        for job in self.queues.flush():
            self.stats["drained"] += 1
            self._finish(
                job,
                ServeResponse(
                    id=job.id, kind="draining", retry_after=retry,
                    detail="server draining; request was not started",
                ),
            )
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        self.recorder.log(
            "drain.end", checkpointed=[rid for rid, _ in inflight]
        )

    async def stop(self) -> None:
        """Drain, close the TCP front end, release the chaos schedule."""
        await self.drain()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        if self.governor is not None:
            governor_mod.uninstall(self.governor)
        if self.config.chaos is not None:
            uninstall(self.config.chaos)
        self.recorder.log("server.stop", stats=dict(self.stats))

    # -- admission ------------------------------------------------------

    async def submit(self, payload: dict) -> ServeResponse:
        """Admit one request; resolves to its single terminal response.

        Never raises for request-side problems: malformed payloads,
        injected accept faults, overload and drain all come back as
        typed responses.
        """
        if not self._started or self._cond is None:
            raise RuntimeError("server not started")
        rid = str(payload.get("id") or f"req-{next(self._seq)}")
        self.stats["received"] += 1
        try:
            chaos_point("serve.accept")
        except OSError as exc:
            self.stats["errors"] += 1
            return ServeResponse(
                id=rid, kind="error", detail=f"accept fault: {exc}"
            )
        if self._draining:
            return ServeResponse(
                id=rid, kind="draining", retry_after=self._retry_after(),
                detail="server draining; request was not accepted",
            )
        # One watermark evaluation per admission: runs the shrink/cancel
        # responses as a side effect and sheds at "shed" or above.
        if (self.governor is not None
                and self.governor.mem_tick() in ("shed", "cancel")):
            self.stats["shed"] += 1
            self.recorder.log(
                "request.shed", id=rid, reason="mem-pressure"
            )
            return ServeResponse(
                id=rid, kind="overloaded", retry_after=self._retry_after(),
                detail="memory watermark exceeded; shedding new requests",
            )
        try:
            job = self._admit(rid, payload)
        except (KeyError, ValueError, TypeError) as exc:
            self.stats["errors"] += 1
            return ServeResponse(
                id=rid, kind="error", detail=f"bad request: {exc}"
            )
        if self.config.max_tasks is not None and (
            len(job.tasks.tasks) > self.config.max_tasks
        ):
            self.stats["shed"] += 1
            self.recorder.log("request.shed", id=rid, reason="oversized")
            return ServeResponse(
                id=rid, kind="overloaded",
                retry_after=None,
                detail=(
                    f"system has {len(job.tasks.tasks)} tasks; this "
                    f"server admits at most {self.config.max_tasks}"
                ),
            )
        async with self._cond:
            try:
                admitted = self.queues.offer(job.tenant, job)
            except OSError as exc:
                self.stats["errors"] += 1
                return ServeResponse(
                    id=rid, kind="error", detail=f"queue fault: {exc}"
                )
            if admitted:
                self._cond.notify()
        if not admitted:
            self.stats["shed"] += 1
            self.recorder.log(
                "request.shed", id=rid, tenant=job.tenant, reason="queue full"
            )
            return ServeResponse(
                id=rid, kind="overloaded", retry_after=self._retry_after(),
                detail=f"tenant {job.tenant!r} queue is full",
            )
        self.recorder.log(
            "request.accepted", id=rid, tenant=job.tenant,
            scenario=job.scenario, backlog=len(self.queues),
        )
        return await job.future

    def _admit(self, rid: str, payload: dict) -> ServeJob:
        """Parse a wire payload into a queued job (raises on bad input)."""
        from repro.core.api import SolveRequest
        from repro.core.objectives import objective_from_spec
        from repro.io.json_codec import system_from_dict

        tasks, arch = system_from_dict(payload["system"])
        objective = objective_from_spec(
            str(payload.get("objective") or "sum_resp")
        )
        certify = bool(payload.get("certify", self.config.certify_default))
        deadline = payload.get("deadline", self.config.default_deadline)
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ValueError("deadline must be positive seconds")
        conflicts = payload.get("conflict_budget")
        if conflicts is not None:
            conflicts = int(conflicts)
        # Serving is exact-or-typed: no heuristic tail, so an expired
        # budget with nothing usable surfaces as deadline_exceeded fast
        # instead of burning drain time in fallback heuristics.
        base = SolveRequest(
            objective=objective, certify=certify, heuristics=()
        )
        return ServeJob(
            id=rid,
            tenant=str(payload.get("tenant") or "default"),
            scenario=str(payload.get("scenario") or tasks.name or "default"),
            tasks=tasks,
            arch=arch,
            digest=system_digest(tasks, arch),
            base_request=base,
            identity_fp=base.fingerprint(),
            deadline_at=(
                None if deadline is None else time.monotonic() + deadline
            ),
            conflict_budget=conflicts,
            certify=certify,
            want_allocation=bool(payload.get("return_allocation", False)),
            future=asyncio.get_running_loop().create_future(),
            submitted=time.monotonic(),
        )

    def _finish(self, job: ServeJob, resp: ServeResponse) -> None:
        if not job.future.done():
            job.future.set_result(resp)
        self.recorder.log(
            "request.done", id=job.id, kind=resp.kind, status=resp.status,
            cost=resp.cost, proven=resp.proven, warm=resp.warm,
            resumed=resp.resumed, seconds=round(resp.seconds, 4),
        )

    def _retry_after(self) -> float:
        """Back-of-envelope hint: backlog drained at the recent rate."""
        if self._recent_seconds:
            per = sum(self._recent_seconds) / len(self._recent_seconds)
        else:
            per = 0.5
        backlog = len(self.queues) + len(self._inflight)
        return round(
            max(0.1, per * max(1, backlog) / max(1, self.config.workers)), 3
        )

    # -- dispatch -------------------------------------------------------

    async def _worker(self, idx: int) -> None:
        assert self._cond is not None
        while True:
            job = await self._next_job()
            if job is None:
                return
            await asyncio.to_thread(self.breaker.maybe_probe)
            resp = await asyncio.to_thread(self._solve_job, job)
            done_budget = self._inflight.pop(job.id, None)
            if done_budget is not None and self.governor is not None:
                self.governor.unregister_budget(done_budget)
            self._recent_seconds.append(resp.seconds)
            if resp.kind == "ok":
                self.stats["served"] += 1
            elif resp.kind == "deadline_exceeded":
                self.stats["deadline_exceeded"] += 1
            elif resp.kind == "overloaded":
                self.stats["shed"] += 1
            elif resp.kind == "error":
                self.stats["errors"] += 1
            self._finish(job, resp)

    async def _next_job(self) -> ServeJob | None:
        assert self._cond is not None
        while True:
            async with self._cond:
                while True:
                    try:
                        job = self.queues.take()
                    except OSError:
                        # Injected dequeue fault: the queue is intact,
                        # retry outside the lock after a beat.
                        job = None
                        break
                    if job is not None:
                        return job
                    if self._draining:
                        return None
                    await self._cond.wait()
            if self._draining and len(self.queues) == 0:
                return None
            await asyncio.sleep(0.02)

    # -- the solve itself (worker thread) -------------------------------

    def _solve_job(self, job: ServeJob) -> ServeResponse:
        t0 = time.monotonic()
        try:
            return self._solve_job_inner(job, t0)
        except Exception as exc:  # noqa: BLE001 - serving boundary
            return ServeResponse(
                id=job.id, kind="error",
                detail=f"{type(exc).__name__}: {exc}",
                seconds=time.monotonic() - t0,
            )

    def _solve_job_inner(self, job: ServeJob, t0: float) -> ServeResponse:
        from repro.core.api import ExitCode, solve
        from repro.io.json_codec import allocation_to_dict
        from repro.sat.core import get_backend

        try:
            chaos_point("serve.worker")
        except OSError as exc:
            # Server-side fault, not a solver-core fault: typed error,
            # no breaker accounting.
            return ServeResponse(
                id=job.id, kind="error", detail=f"worker fault: {exc}",
                seconds=time.monotonic() - t0,
            )
        remaining = None
        if job.deadline_at is not None:
            remaining = job.deadline_at - time.monotonic()
            if remaining <= 0:
                return ServeResponse(
                    id=job.id, kind="deadline_exceeded",
                    detail="deadline expired while queued",
                    seconds=time.monotonic() - t0,
                )
        budget = Budget(
            wall_seconds=remaining, max_conflicts=job.conflict_budget
        )
        self._inflight[job.id] = budget
        if self._draining:
            # Drain may have snapshotted _inflight before we registered.
            budget.expired_reason = "server draining"
        if self.governor is not None:
            # Cooperative-cancel target while in flight: the governor's
            # "cancel" level sets expired_reason like a drain does.
            self.governor.register_budget(budget)

        from repro.bounds import HintBoundsProvider, RelaxationBoundsProvider

        entry = self.cache.lookup(job.scenario, job.identity_fp)
        hint = entry.optimum if entry is not None else None
        witness = entry.allocation if entry is not None else None
        providers: list = []
        if entry is not None:
            providers.append(HintBoundsProvider(
                upper=hint, witness=witness, name="warm-cache",
            ))
        if self.config.bounds != "off":
            providers.append(RelaxationBoundsProvider())
        ckpt = None
        if self.config.keep_checkpoints:
            from repro.fabric.jobs import code_fingerprint

            # Keyed by system + identity options + code: a checkpoint
            # recorded by different solver code is never resumed.
            key = hashlib.sha256(
                f"{job.digest}|{job.identity_fp}|{code_fingerprint()}"
                .encode()
            ).hexdigest()[:24]
            ckpt = os.path.join(self.checkpoint_dir, f"{key}.json")
        request = job.base_request.merged(
            budget=budget,
            checkpoint=ckpt,
            bounds=tuple(providers),
            flight_log=self.events_path,
        )
        backend = get_backend().name
        try:
            report = solve(job.tasks, job.arch, request)
        except Exception as exc:  # noqa: BLE001 - serving boundary
            reason = f"{type(exc).__name__}: {exc}"
            self.breaker.record_failure(reason, backend=backend)
            return ServeResponse(
                id=job.id, kind="error", detail=reason,
                seconds=time.monotonic() - t0,
            )
        failed = [s for s in report.stages if s.status == "failed"]
        if failed:
            self.breaker.record_failure(
                f"stage {failed[0].stage} failed", backend=backend
            )
        else:
            self.breaker.record_success()
        return self._classify(job, budget, report, t0, hint, ExitCode,
                              allocation_to_dict)

    def _classify(self, job, budget, report, t0, hint, ExitCode,
                  allocation_to_dict) -> ServeResponse:
        seconds = time.monotonic() - t0
        warm = hint is not None
        resumed = self._resumed(report)
        certified = None
        if report.certificate is not None:
            certified = bool(report.certificate.all_verified)
        if report.exit_code == ExitCode.CERTIFICATE_FAILED:
            return ServeResponse(
                id=job.id, kind="certificate_failed", status=report.status,
                cost=report.cost, proven=False, certified=False,
                warm=warm, resumed=resumed, seconds=seconds,
                detail="certificate audit failed; answer withheld",
            )
        if report.status == "infeasible":
            return ServeResponse(
                id=job.id, kind="infeasible", status="infeasible",
                proven=True, certified=certified, resumed=resumed,
                seconds=seconds,
            )
        if report.status == "unknown":
            reason = budget.expired_reason or self._interrupt_reason(report)
            if budget.expired_reason == "server draining":
                return ServeResponse(
                    id=job.id, kind="draining",
                    retry_after=self._retry_after(), seconds=seconds,
                    detail=(
                        "interrupted by drain; search checkpointed -- "
                        "resubmit to the restarted server to resume"
                    ),
                )
            if budget.expired_reason == "memory watermark exceeded":
                # Governor "cancel" response: typed shed, checkpointed
                # like a drain -- resubmission resumes the search.
                return ServeResponse(
                    id=job.id, kind="overloaded",
                    retry_after=self._retry_after(), seconds=seconds,
                    detail=(
                        "solve cancelled by memory watermark; search "
                        "checkpointed -- resubmit when pressure clears"
                    ),
                )
            if job.deadline_at is not None or job.conflict_budget is not None:
                return ServeResponse(
                    id=job.id, kind="deadline_exceeded", seconds=seconds,
                    detail=reason or "budget exhausted before an answer",
                )
            return ServeResponse(
                id=job.id, kind="error", seconds=seconds,
                detail=reason or "solve produced no usable answer",
            )
        # A usable answer: serve it with its honest status -- including
        # an anytime upper_bound cut short by deadline or drain.
        if (
            report.status == "optimal"
            and report.proven
            and report.cost is not None
        ):
            self.cache.store(
                job.scenario, job.identity_fp, report.cost,
                {
                    "cost": report.cost,
                    "proven": report.proven,
                    "status": report.status,
                },
                job.digest,
                allocation=(
                    allocation_to_dict(report.allocation)
                    if report.allocation is not None else None
                ),
            )
        alloc = None
        if job.want_allocation and report.allocation is not None:
            alloc = allocation_to_dict(report.allocation)
        certified = None
        if report.certificate is not None:
            certified = bool(report.certificate.all_verified)
        return ServeResponse(
            id=job.id, kind="ok", status=report.status, cost=report.cost,
            proven=report.proven, certified=certified, warm=warm,
            resumed=resumed, seconds=seconds, allocation=alloc,
        )

    @staticmethod
    def _resumed(report) -> bool:
        res = report.result
        inner = getattr(res, "result", None) or res
        outcome = getattr(inner, "outcome", None)
        return bool(getattr(outcome, "resumed", False))

    @staticmethod
    def _interrupt_reason(report) -> str | None:
        res = report.result
        inner = getattr(res, "result", None) or res
        outcome = getattr(inner, "outcome", None)
        reason = getattr(outcome, "interrupt_reason", None)
        if reason:
            return reason
        stages = getattr(report, "stages", None) or []
        for st in stages:
            if st.detail:
                return f"stage {st.stage}: {st.detail.splitlines()[-1]}"
        return None

    # -- TCP JSON-lines front end ---------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        wlock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def send(resp: ServeResponse) -> None:
            data = (json.dumps(resp.to_dict()) + "\n").encode()
            try:
                async with wlock:
                    writer.write(data)
                    await writer.drain()
            except OSError:
                pass  # client went away mid-answer; nothing to do

        async def answer(line: bytes) -> None:
            if len(line) > self.config.max_frame_bytes:
                resp = ServeResponse(
                    id="", kind="error",
                    detail=(
                        f"frame of {len(line)} bytes exceeds the "
                        f"{self.config.max_frame_bytes}-byte limit"
                    ),
                )
                await send(resp)
                return
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("payload must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                resp = ServeResponse(
                    id="", kind="error", detail=f"bad request line: {exc}"
                )
            else:
                resp = await self.submit(payload)
            await send(resp)

        try:
            while True:
                try:
                    if self.config.read_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(),
                            timeout=self.config.read_timeout,
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # Slow-client guard: a stalled socket must not pin
                    # this handler (or, transitively, queue slots).
                    self.recorder.log(
                        "conn.timeout", timeout=self.config.read_timeout
                    )
                    await send(ServeResponse(
                        id="", kind="error",
                        detail=(
                            f"no complete frame within "
                            f"{self.config.read_timeout}s; closing "
                            f"stalled connection"
                        ),
                    ))
                    break
                except ValueError:
                    # readline() overran the stream limit: the frame is
                    # oversized and the stream can no longer be framed
                    # reliably, so answer typed and close.
                    self.recorder.log(
                        "conn.oversized",
                        limit=self.config.max_frame_bytes,
                    )
                    await send(ServeResponse(
                        id="", kind="error",
                        detail=(
                            f"frame exceeds the "
                            f"{self.config.max_frame_bytes}-byte limit; "
                            f"closing connection"
                        ),
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(answer(line))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    def status(self) -> dict:
        return {
            "draining": self._draining,
            "backlog": len(self.queues),
            "inflight": sorted(self._inflight),
            "stats": dict(self.stats),
            "cache": self.cache.stats(),
            "breaker": self.breaker.status(),
            "governor": (
                self.governor.stats_dict()
                if self.governor is not None else None
            ),
        }
