"""Client helpers for the JSON-lines allocation service.

The wire protocol is one JSON object per line, both ways.  Request
fields (only ``system`` is required)::

    {
      "id": "r1",                  # echoed back; generated when absent
      "tenant": "plant-a",         # admission-control queue ("default")
      "scenario": "plant-a/trt",   # warm-cache family (task-set name)
      "system": {...},             # repro.io.json_codec system schema
      "objective": "trt:ring",     # objective spec (sum_resp default)
      "deadline": 5.0,             # wall seconds; server default if absent
      "conflict_budget": 200000,   # optional conflict cap
      "certify": true,             # audit the answer before serving it
      "return_allocation": true    # include the allocation payload
    }

The response is a :class:`repro.serve.responses.ServeResponse` dict.
Both an asyncio client (:func:`request`) and a blocking convenience
wrapper (:func:`request_sync`, used by the CI smoke and the tests) are
provided; neither retries -- the typed ``retry_after`` hint is the
caller's business.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.serve.responses import ServeResponse

__all__ = ["request", "request_sync", "request_many_sync"]


async def request(
    host: str, port: int, payload: dict, timeout: float | None = None
) -> ServeResponse:
    """Send one request over a fresh connection; await its response."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        return ServeResponse.from_dict(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


def request_sync(
    host: str, port: int, payload: dict, timeout: float | None = 60.0
) -> ServeResponse:
    """Blocking one-shot request (plain sockets; safe outside any loop)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-request"
                )
            buf += chunk
    return ServeResponse.from_dict(json.loads(buf))


def request_many_sync(
    host: str, port: int, payloads: list[dict], timeout: float | None = 60.0
) -> list[ServeResponse]:
    """Pipeline several requests down one connection; responses are
    matched back into payload order by id (the server may interleave)."""
    tagged = []
    for i, payload in enumerate(payloads):
        p = dict(payload)
        p.setdefault("id", f"req-{i}")
        tagged.append(p)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        blob = "".join(json.dumps(p) + "\n" for p in tagged)
        sock.sendall(blob.encode())
        buf = b""
        lines: list[bytes] = []
        while len(lines) < len(tagged):
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-batch"
                )
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if line.strip():
                    lines.append(line)
    by_id = {}
    for line in lines:
        resp = ServeResponse.from_dict(json.loads(line))
        by_id[resp.id] = resp
    return [by_id[p["id"]] for p in tagged]
