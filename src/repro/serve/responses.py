"""Typed terminal responses of the allocation server.

Every request submitted to :class:`repro.serve.server.AllocationServer`
terminates with **exactly one** :class:`ServeResponse` -- the server
never hangs a client and never drops a request silently (the serve
torture suite drives this invariant under injected faults).  The
``kind`` field is the typed verdict:

==================== ===================================================
``ok``               an answer was produced; ``status`` / ``cost`` /
                     ``proven`` carry the honest envelope (``optimal``,
                     ``upper_bound``, ``heuristic``, ``feasible``)
``infeasible``       certified unsatisfiability
``deadline_exceeded`` the request's deadline expired before anything
                     usable existed (budget-exhausted solves land here,
                     never as a silent partial answer)
``overloaded``       admission control shed the request (tenant queue
                     full); ``retry_after`` hints when to come back
``draining``         the server is shutting down; an in-flight search
                     was checkpointed and resumes on the restarted
                     server, a queued one was never started
``certificate_failed`` ``certify`` was asked and a probe certificate
                     failed verification -- the answer is *not* served
``error``            a typed internal failure (injected fault, bad
                     payload, solver exception); ``detail`` explains
==================== ===================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["KINDS", "TERMINAL_KINDS", "ServeResponse"]

KINDS = (
    "ok",
    "infeasible",
    "deadline_exceeded",
    "overloaded",
    "draining",
    "certificate_failed",
    "error",
)

#: Every kind is terminal: one request, one response, no follow-ups.
TERMINAL_KINDS = frozenset(KINDS)


@dataclass
class ServeResponse:
    """One typed terminal answer to one serve request."""

    id: str
    kind: str
    #: Honest solve status for ``ok`` (``optimal`` / ``upper_bound`` /
    #: ``heuristic`` / ``feasible``); None otherwise.
    status: str | None = None
    cost: int | None = None
    proven: bool = False
    #: Certification verdict when the request asked for ``certify``;
    #: None when certification was off.
    certified: bool | None = None
    #: True when the solve resumed a checkpointed binary search.
    resumed: bool = False
    #: True when a warm-start hint from the scenario cache was applied.
    warm: bool = False
    #: Seconds the client should wait before retrying (``overloaded`` /
    #: ``draining``).
    retry_after: float | None = None
    detail: str | None = None
    #: Wall seconds from dequeue to response (0 for shed requests).
    seconds: float = 0.0
    #: The allocation payload (``repro.io.allocation_to_dict``) for
    #: usable answers, when the client asked for it.
    allocation: dict | None = None

    def __post_init__(self) -> None:
        if self.kind not in TERMINAL_KINDS:
            raise ValueError(f"unknown response kind {self.kind!r}")

    @property
    def usable(self) -> bool:
        """Whether the response carries a deployable answer."""
        return self.kind == "ok" and self.cost is not None or (
            self.kind == "ok" and self.status == "feasible"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServeResponse":
        names = {f.name for f in cls.__dataclass_fields__.values()}
        kwargs = {k: v for k, v in data.items() if k in names}
        kwargs.setdefault("id", "")
        kwargs.setdefault("kind", "error")
        return cls(**kwargs)


# appease linters that dislike unused imports in docs-only modules
_ = field
