"""Admission control: bounded per-tenant queues, weighted-fair dequeue.

The server accepts work from many tenants; one chatty tenant must not
starve the others, and a burst must not grow an unbounded backlog that
the solver can never drain.  Two mechanisms, both deliberately simple:

- **bounded queues** -- each tenant owns a FIFO of at most ``depth``
  requests.  A request arriving at a full queue is *shed* immediately
  with a typed ``overloaded`` response and a ``retry_after`` hint; it
  never waits unboundedly and never evicts someone else's work.
- **weighted-fair dequeue** -- stride scheduling over the non-empty
  tenant queues.  Each tenant carries a *pass* value advanced by
  ``1 / weight`` per dequeued request, and the scheduler always serves
  the non-empty tenant with the smallest pass.  A tenant with weight 2
  therefore gets ~2x the dequeue slots of a weight-1 tenant under
  contention, while an idle tenant's pass is re-synced to the virtual
  time on re-arrival so it cannot hoard credit.

This structure is only ever touched from the server's event loop (the
asyncio single-thread discipline), so it needs no locking of its own;
``serve.queue`` is a named chaos site covering both admission and
dequeue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.chaos import chaos_point

__all__ = ["TenantQueues"]


@dataclass
class _Tenant:
    name: str
    weight: float
    jobs: deque = field(default_factory=deque)
    #: Stride-scheduling pass value: advanced by 1/weight per dequeue.
    pass_value: float = 0.0


class TenantQueues:
    """Bounded per-tenant FIFOs with stride-scheduled fair dequeue."""

    def __init__(
        self,
        depth: int = 8,
        weights: dict[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        self._tenants: dict[str, _Tenant] = {}
        #: Virtual time: the pass value of the most recent dequeue.  A
        #: tenant waking from idle starts here, not at its stale pass.
        self._vtime = 0.0
        self.shed = 0
        self.accepted = 0

    # ------------------------------------------------------------------

    def _tenant(self, name: str) -> _Tenant:
        t = self._tenants.get(name)
        if t is None:
            weight = max(self._weights.get(name, self.default_weight), 1e-6)
            t = _Tenant(name=name, weight=weight)
            self._tenants[name] = t
        return t

    def offer(self, tenant: str, job) -> bool:
        """Admit ``job`` for ``tenant``.  Returns False when the tenant's
        queue is full -- the caller must shed with ``overloaded``."""
        chaos_point("serve.queue")
        t = self._tenant(tenant)
        if len(t.jobs) >= self.depth:
            self.shed += 1
            return False
        if not t.jobs:
            # Waking from idle: join at the current virtual time so the
            # quiet tenant is served soon but cannot replay banked credit.
            t.pass_value = max(t.pass_value, self._vtime)
        t.jobs.append(job)
        self.accepted += 1
        return True

    def take(self):
        """Dequeue the next job fairly, or None when everything is empty."""
        chaos_point("serve.queue")
        best: _Tenant | None = None
        for t in self._tenants.values():
            if not t.jobs:
                continue
            if best is None or t.pass_value < best.pass_value:
                best = t
        if best is None:
            return None
        self._vtime = best.pass_value
        best.pass_value += 1.0 / best.weight
        return best.jobs.popleft()

    def flush(self) -> list:
        """Remove and return every queued job (drain path)."""
        out = []
        for t in self._tenants.values():
            out.extend(t.jobs)
            t.jobs.clear()
        return out

    def __len__(self) -> int:
        return sum(len(t.jobs) for t in self._tenants.values())

    def backlog(self, tenant: str | None = None) -> int:
        if tenant is None:
            return len(self)
        t = self._tenants.get(tenant)
        return len(t.jobs) if t else 0
