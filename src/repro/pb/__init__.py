"""Pseudo-Boolean (PB) modeling layer.

The paper encodes the bit-blasted allocation problem as *Pseudo-Boolean
formulae* -- conjunctions of linear constraints over Boolean literals,
"similar to the constraint part of a 0-1 linear program" [15] -- and
solves them with the PB solver GOBLIN [8].  This package provides:

- :class:`repro.pb.constraint.PBConstraint` and
  :func:`repro.pb.constraint.normalize` -- normalization of arbitrary
  linear PB (in)equalities (>=, <=, =, <, >, mixed-sign coefficients,
  repeated and complementary literals) into the canonical
  ``sum c_i * l_i >= b`` form with positive coefficients the engine
  expects,
- :mod:`repro.pb.encoder` -- PB-to-CNF compilation (BDD/ITE-style and
  sequential-counter cardinality encodings) so every constraint can
  alternatively be solved purely clausally,
- :mod:`repro.pb.opb` -- reader/writer for the OPB exchange format.

The engine-level propagation for PB constraints lives inside
:mod:`repro.sat.solver` (counter-based watching); reasons for learnt
clauses are obtained by *weakening* a PB constraint to the clausal
implicate over its currently-false literals, which is sound because
removing satisfied/unassigned terms only strengthens the implication.
"""

from repro.pb.constraint import PBConstraint, Relation, add_constraint, normalize
from repro.pb.encoder import EncodeMode, encode_pb

__all__ = [
    "PBConstraint",
    "Relation",
    "normalize",
    "add_constraint",
    "encode_pb",
    "EncodeMode",
]
