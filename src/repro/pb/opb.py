"""OPB (pseudo-Boolean competition) format reader/writer.

Format subset::

    * comment
    +3 x1 -2 x2 >= 1 ;
    min: +1 x1 +2 x3 ;

Variables are 1-based ``x<i>``; ``~x<i>`` denotes negation. Only the
linear fragment is supported (which is all the paper needs).
"""

from __future__ import annotations

from typing import TextIO

from repro.pb.constraint import PBConstraint, Relation, normalize
from repro.sat.literals import mklit

__all__ = ["parse_opb", "write_opb", "OpbProblem"]


class OpbProblem:
    """Parsed OPB instance: constraints in canonical form plus an optional
    minimization objective as (coef, lit) terms."""

    def __init__(
        self,
        nvars: int,
        constraints: list[PBConstraint],
        objective: list[tuple[int, int]] | None,
    ):
        self.nvars = nvars
        self.constraints = constraints
        self.objective = objective


def _parse_term_tokens(tokens: list[str]) -> tuple[list[tuple[int, int]], int]:
    """Parse ``coef var coef var ...`` token pairs.

    Returns the terms and the maximum variable index seen (1-based).
    """
    terms: list[tuple[int, int]] = []
    maxvar = 0
    i = 0
    while i < len(tokens):
        coef = int(tokens[i])
        name = tokens[i + 1]
        negated = name.startswith("~")
        if negated:
            name = name[1:]
        if not name.startswith("x"):
            raise ValueError(f"bad OPB variable token {tokens[i + 1]!r}")
        idx = int(name[1:])
        maxvar = max(maxvar, idx)
        terms.append((coef, mklit(idx - 1, negated)))
        i += 2
    return terms, maxvar


_RELATIONS = {
    ">=": Relation.GE,
    "<=": Relation.LE,
    "=": Relation.EQ,
    ">": Relation.GT,
    "<": Relation.LT,
}


def parse_opb(text: str) -> OpbProblem:
    """Parse OPB text into an :class:`OpbProblem`."""
    constraints: list[PBConstraint] = []
    objective: list[tuple[int, int]] | None = None
    nvars = 0
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("*"):
            # The standard OPB size header fixes the variable count even
            # when trailing variables appear in no constraint.
            if "#variable=" in stripped:
                try:
                    nvars = max(
                        nvars,
                        int(stripped.split("#variable=")[1].split()[0]),
                    )
                except (IndexError, ValueError):
                    pass
            continue
        line = stripped.rstrip(";").strip()
        if not line:
            continue
        if line.startswith("min:"):
            terms, mv = _parse_term_tokens(line[4:].split())
            objective = terms
            nvars = max(nvars, mv)
            continue
        tokens = line.split()
        rel_idx = next(
            (i for i, t in enumerate(tokens) if t in _RELATIONS), None
        )
        if rel_idx is None:
            raise ValueError(f"no relation in OPB line {raw!r}")
        terms, mv = _parse_term_tokens(tokens[:rel_idx])
        nvars = max(nvars, mv)
        rel = _RELATIONS[tokens[rel_idx]]
        rhs = int(tokens[rel_idx + 1])
        normed = normalize(terms, rel, rhs)
        if normed is object():  # pragma: no cover - defensive
            raise ValueError("constraint unsatisfiable at parse time")
        from repro.pb.constraint import UNSAT

        if normed is UNSAT:
            raise ValueError(f"OPB constraint is trivially UNSAT: {raw!r}")
        constraints.extend(normed)  # type: ignore[arg-type]
    return OpbProblem(nvars, constraints, objective)


def write_opb(problem: OpbProblem, out: TextIO) -> None:
    """Write an :class:`OpbProblem` in OPB syntax."""
    ncon = len(problem.constraints)
    out.write(f"* #variable= {problem.nvars} #constraint= {ncon}\n")
    if problem.objective is not None:
        terms = " ".join(
            f"{c:+d} {'~' if l & 1 else ''}x{(l >> 1) + 1}"
            for c, l in problem.objective
        )
        out.write(f"min: {terms} ;\n")
    for con in problem.constraints:
        terms = " ".join(
            f"{c:+d} {'~' if l & 1 else ''}x{(l >> 1) + 1}"
            for c, l in zip(con.coefs, con.lits)
        )
        out.write(f"{terms} >= {con.bound} ;\n")
