"""Normalization of pseudo-Boolean constraints.

A raw constraint is ``sum coef_i * lit_i  REL  rhs`` with arbitrary
integer coefficients and any relation in {>=, <=, =, <, >}.  The engine
(:meth:`repro.sat.solver.Solver.add_pb`) accepts only the canonical form

    sum c_i * l_i >= b      with all c_i > 0 and distinct variables.

Normalization steps (standard PB preprocessing, cf. Barth [15]):

1. relation rewriting: ``<`` / ``>`` become ``<=`` / ``>=`` on shifted
   integer bounds; ``=`` splits into the pair of inequalities; ``<=``
   negates both sides into ``>=``.
2. merging of repeated literals and of complementary pairs
   (``c1*l + c2*(~l) = (c1-c2)*l + c2``).
3. sign folding: ``-c*l == c*(~l) - c``, moving the constant to the rhs.
4. trivial simplification: bound <= 0 means the constraint is a
   tautology; sum of coefficients below the bound means it is
   unsatisfiable (reported via :data:`UNSAT` sentinel).
"""

from __future__ import annotations

from enum import Enum

from repro.sat.literals import neg
from repro.sat.solver import Solver

__all__ = ["Relation", "PBConstraint", "normalize", "add_constraint", "UNSAT"]


class Relation(Enum):
    """Relational operator of a raw PB constraint."""

    GE = ">="
    LE = "<="
    EQ = "="
    GT = ">"
    LT = "<"


class PBConstraint:
    """A canonical-form PB constraint ``sum coefs[i]*lits[i] >= bound``.

    ``trivial`` constraints have an empty term list and bound <= 0.
    """

    __slots__ = ("lits", "coefs", "bound")

    def __init__(self, lits: list[int], coefs: list[int], bound: int):
        self.lits = lits
        self.coefs = coefs
        self.bound = bound

    @property
    def trivial(self) -> bool:
        """True when the constraint holds vacuously."""
        return self.bound <= 0

    @property
    def unsatisfiable(self) -> bool:
        """True when no assignment can reach the bound."""
        return sum(self.coefs) < self.bound

    def is_clause(self) -> bool:
        """True when the constraint degenerates to a plain clause."""
        return self.bound == 1 and all(c == 1 for c in self.coefs)

    def is_cardinality(self) -> bool:
        """True when all coefficients are 1 (at-least-k)."""
        return all(c == 1 for c in self.coefs)

    def evaluate(self, model: list[bool]) -> bool:
        """Check the constraint under a full Boolean model."""
        total = 0
        for coef, lit in zip(self.coefs, self.lits):
            val = model[lit >> 1]
            if lit & 1:
                val = not val
            if val:
                total += coef
        return total >= self.bound

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{c}*{'~' if l & 1 else ''}x{l >> 1}"
            for c, l in zip(self.coefs, self.lits)
        )
        return f"PBConstraint({terms or '0'} >= {self.bound})"


#: Sentinel returned by :func:`normalize` for constraints that are
#: unsatisfiable independently of any assignment.
UNSAT = object()


def _merge_terms(terms: list[tuple[int, int]]) -> tuple[dict[int, int], int]:
    """Merge repeated/complementary literals.

    Returns ``(coef_by_positive_lit, constant)`` where each variable
    appears once with the literal's *positive* polarity carrying a signed
    coefficient, plus a constant offset contributed by complementary
    folding.
    """
    by_pos: dict[int, int] = {}
    constant = 0
    for coef, lit in terms:
        pos = lit & ~1
        if lit & 1:
            # c * (~x) == c - c*x
            constant += coef
            by_pos[pos] = by_pos.get(pos, 0) - coef
        else:
            by_pos[pos] = by_pos.get(pos, 0) + coef
    return by_pos, constant


def _to_ge(terms: list[tuple[int, int]], rhs: int) -> PBConstraint | object:
    """Turn ``sum coef*lit >= rhs`` (arbitrary signs) into canonical form."""
    by_pos, constant = _merge_terms(terms)
    bound = rhs - constant
    lits: list[int] = []
    coefs: list[int] = []
    for pos, coef in sorted(by_pos.items()):
        if coef == 0:
            continue
        if coef > 0:
            lits.append(pos)
            coefs.append(coef)
        else:
            # -c*x == c*(~x) - c
            lits.append(neg(pos))
            coefs.append(-coef)
            bound += -coef
    if bound <= 0:
        return PBConstraint([], [], 0)
    # Saturation: cap coefficients at the bound.
    coefs = [min(c, bound) for c in coefs]
    con = PBConstraint(lits, coefs, bound)
    if con.unsatisfiable:
        return UNSAT
    return con


def normalize(
    terms: list[tuple[int, int]], rel: Relation, rhs: int
) -> list[PBConstraint] | object:
    """Normalize a raw constraint into canonical >=-form constraints.

    ``terms`` is a list of ``(coef, lit)`` pairs (flat literals).  Returns
    a list of :class:`PBConstraint` (empty when vacuous), or the
    :data:`UNSAT` sentinel when the constraint can never hold.
    """
    if rel is Relation.GT:
        return normalize(terms, Relation.GE, rhs + 1)
    if rel is Relation.LT:
        return normalize(terms, Relation.LE, rhs - 1)
    if rel is Relation.LE:
        flipped = [(-c, l) for (c, l) in terms]
        return normalize(flipped, Relation.GE, -rhs)
    if rel is Relation.EQ:
        lo = normalize(terms, Relation.GE, rhs)
        hi = normalize(terms, Relation.LE, rhs)
        if lo is UNSAT or hi is UNSAT:
            return UNSAT
        return [*lo, *hi]
    assert rel is Relation.GE
    con = _to_ge(list(terms), rhs)
    if con is UNSAT:
        return UNSAT
    assert isinstance(con, PBConstraint)
    return [] if con.trivial else [con]


def add_constraint(
    solver: Solver,
    terms: list[tuple[int, int]],
    rel: Relation,
    rhs: int,
    *,
    as_cnf: bool = False,
) -> bool:
    """Normalize and add a raw PB constraint to the engine.

    With ``as_cnf=True`` the constraint is compiled to clauses via
    :func:`repro.pb.encoder.encode_pb` instead of using the native PB
    propagator.  Returns False when the solver became unsatisfiable.
    """
    cons = normalize(terms, rel, rhs)
    if cons is UNSAT:
        # Empty clause rather than a bare ok=False so proof logging
        # records the contradiction as an input.
        return solver.add_clause([])
    ok = True
    for con in cons:
        if con.is_clause():
            ok = solver.add_clause(list(con.lits)) and ok
        elif as_cnf:
            from repro.pb.encoder import EncodeMode, encode_pb

            ok = encode_pb(solver, con, EncodeMode.AUTO) and ok
        else:
            ok = solver.add_pb(list(con.lits), list(con.coefs), con.bound) and ok
    return ok
