"""PB-to-CNF compilation.

The paper keeps PB constraints native ("we take advantage of
Pseudo-Boolean formulae rather than use an encoding by conjunctive normal
form", section 5.1); this module provides the CNF route as well so the two
can be compared (see ``benchmarks/test_ablation_encodings.py``):

- **BDD/ITE encoding** for general weighted constraints: the constraint
  ``sum_{j>=i} c_j l_j >= b`` is compiled top-down into an if-then-else
  DAG with memoization on ``(i, b)``; each node becomes a fresh variable
  with the four standard ITE clauses. Polynomial for the
  coefficient-structure our bit-blaster emits.
- **Sequential-counter (Sinz) encoding** for cardinality constraints
  (all coefficients 1), which produces the well-known at-most-k ladder.
- **Pairwise encoding** for tiny at-most-one constraints.

All encoders add clauses directly to a :class:`repro.sat.solver.Solver`.
"""

from __future__ import annotations

from enum import Enum

from repro.pb.constraint import PBConstraint
from repro.sat.literals import mklit, neg
from repro.sat.solver import Solver

__all__ = ["EncodeMode", "encode_pb", "encode_at_most_k", "encode_bdd"]

#: Constant node markers used while building the ITE DAG.
_TRUE = "T"
_FALSE = "F"


class EncodeMode(Enum):
    """Strategy selector for :func:`encode_pb`."""

    AUTO = "auto"
    BDD = "bdd"
    SEQUENTIAL = "sequential"
    NATIVE = "native"


def encode_pb(solver: Solver, con: PBConstraint, mode: EncodeMode) -> bool:
    """Add ``con`` to ``solver`` using the requested encoding.

    Structurally identical constraints are encoded once per solver: the
    auxiliary ladder/DAG of an earlier encode already enforces the bound,
    so re-encoding would only duplicate clauses.  Returns False when the
    solver became unsatisfiable.
    """
    if con.trivial:
        return True
    if con.unsatisfiable:
        # Empty clause rather than a bare ok=False so proof logging
        # records the contradiction as an input.
        return solver.add_clause([])
    key = (tuple(con.lits), tuple(con.coefs), con.bound, mode.value)
    cache = getattr(solver, "_pb_encoded", None)
    if cache is None:
        cache = set()
        solver._pb_encoded = cache
    if key in cache:
        return solver.ok
    cache.add(key)
    if mode is EncodeMode.NATIVE:
        return solver.add_pb(list(con.lits), list(con.coefs), con.bound)
    if con.is_clause():
        return solver.add_clause(list(con.lits))
    if mode is EncodeMode.AUTO:
        mode = EncodeMode.SEQUENTIAL if con.is_cardinality() else EncodeMode.BDD
    if mode is EncodeMode.SEQUENTIAL:
        if not con.is_cardinality():
            raise ValueError("sequential encoding requires unit coefficients")
        # at-least-k over lits == at-most-(n-k) over negated lits.
        k = len(con.lits) - con.bound
        return encode_at_most_k(solver, [neg(l) for l in con.lits], k)
    assert mode is EncodeMode.BDD
    return encode_bdd(solver, con)


def encode_at_most_k(solver: Solver, lits: list[int], k: int) -> bool:
    """Sinz sequential-counter at-most-k over ``lits``.

    ``k >= len(lits)`` is vacuous; ``k == 0`` forces all literals false;
    ``k == 1`` with few literals falls back to the pairwise encoding.
    """
    n = len(lits)
    if k >= n:
        return True
    if k < 0:
        return solver.add_clause([])
    if k == 0:
        ok = True
        for l in lits:
            ok = solver.add_clause([neg(l)]) and ok
        return ok
    if k == 1 and n <= 5:
        return solver.add_at_most_one(lits)
    # Registers s[i][j]: "at least j+1 of lits[0..i] are true".
    s = [[solver.new_var() for _ in range(k)] for _ in range(n)]
    ok = True
    ok = solver.add_clause([neg(lits[0]), mklit(s[0][0])]) and ok
    for j in range(1, k):
        ok = solver.add_clause([neg(mklit(s[0][j]))]) and ok
    for i in range(1, n):
        ok = solver.add_clause([neg(lits[i]), mklit(s[i][0])]) and ok
        ok = solver.add_clause([neg(mklit(s[i - 1][0])), mklit(s[i][0])]) and ok
        for j in range(1, k):
            ok = (
                solver.add_clause(
                    [neg(lits[i]), neg(mklit(s[i - 1][j - 1])), mklit(s[i][j])]
                )
                and ok
            )
            ok = (
                solver.add_clause([neg(mklit(s[i - 1][j])), mklit(s[i][j])])
                and ok
            )
        ok = (
            solver.add_clause([neg(lits[i]), neg(mklit(s[i - 1][k - 1]))])
            and ok
        )
    return ok


def encode_bdd(solver: Solver, con: PBConstraint) -> bool:
    """BDD/ITE encoding of a general canonical PB constraint.

    Builds the decision DAG over literals in decreasing-coefficient order
    with memoization on the residual bound, Tseitin-encodes every internal
    node, and asserts the root.
    """
    order = sorted(
        range(len(con.lits)), key=lambda i: -con.coefs[i]
    )
    lits = [con.lits[i] for i in order]
    coefs = [con.coefs[i] for i in order]
    n = len(lits)
    # Suffix sums for the early-False cut.
    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + coefs[i]

    memo: dict[tuple[int, int], object] = {}
    ok_flag = [True]

    def build(i: int, b: int):
        if b <= 0:
            return _TRUE
        if suffix[i] < b:
            return _FALSE
        key = (i, b)
        node = memo.get(key)
        if node is not None:
            return node
        hi = build(i + 1, b - coefs[i])
        lo = build(i + 1, b)
        if hi is lo:
            memo[key] = hi
            return hi
        x = solver.new_var()
        xl = mklit(x)
        l = lits[i]
        add = solver.add_clause
        # x <-> ITE(l, hi, lo). Since b > 0 and suffix[i] >= b, the hi
        # child is never constant-False and the lo child never
        # constant-True, leaving four shapes:
        if hi is _TRUE and lo is _FALSE:
            # x <-> l
            ok_flag[0] = add([neg(xl), l]) and ok_flag[0]
            ok_flag[0] = add([xl, neg(l)]) and ok_flag[0]
        elif hi is _TRUE:
            # x <-> (l | lo)
            ll = _as_lit(lo)
            ok_flag[0] = add([neg(xl), l, ll]) and ok_flag[0]
            ok_flag[0] = add([xl, neg(l)]) and ok_flag[0]
            ok_flag[0] = add([xl, neg(ll)]) and ok_flag[0]
        elif lo is _FALSE:
            # x <-> (l & hi)
            hl = _as_lit(hi)
            ok_flag[0] = add([neg(xl), l]) and ok_flag[0]
            ok_flag[0] = add([neg(xl), hl]) and ok_flag[0]
            ok_flag[0] = add([xl, neg(l), neg(hl)]) and ok_flag[0]
        else:
            hl = _as_lit(hi)
            ll = _as_lit(lo)
            ok_flag[0] = add([neg(xl), neg(l), hl]) and ok_flag[0]
            ok_flag[0] = add([neg(xl), l, ll]) and ok_flag[0]
            ok_flag[0] = add([xl, neg(l), neg(hl)]) and ok_flag[0]
            ok_flag[0] = add([xl, l, neg(ll)]) and ok_flag[0]
        memo[key] = xl
        return xl

    def _as_lit(node) -> int:
        assert node is not _TRUE and node is not _FALSE
        return node  # type: ignore[return-value]

    root = build(0, con.bound)
    if root is _TRUE:
        return ok_flag[0]
    if root is _FALSE:
        return solver.add_clause([]) and ok_flag[0]
    return solver.add_clause([root]) and ok_flag[0]
