"""Simulation-vs-analysis cross validation.

For a schedulable allocation, every observed behaviour must stay within
the analytical worst-case bounds:

- each task's observed response time <= its RTA fixed point,
- each message's per-hop sojourn    <= its per-medium local deadline,
- each message's end-to-end time    <= its deadline,
- no deadline miss events at all.

A violation means a bug in the analysis, the encoder or the simulator --
the three are implemented independently, so agreement is strong evidence
of correctness (used by the property tests in
``tests/test_simulation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.allocation import Allocation
from repro.analysis.feasibility import FeasibilityReport
from repro.model.architecture import Architecture
from repro.model.task import TaskSet
from repro.sim.engine import SimulationResult, simulate

__all__ = ["ValidationOutcome", "validate_against_analysis"]


@dataclass
class ValidationOutcome:
    """Comparison of simulated observations with analytical bounds."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    sim: SimulationResult | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def validate_against_analysis(
    tasks: TaskSet,
    arch: Architecture,
    alloc: Allocation,
    report: FeasibilityReport,
    horizon: int | None = None,
    offsets: dict[str, int] | None = None,
) -> ValidationOutcome:
    """Simulate and compare against a schedulable analysis report."""
    if not report.schedulable:
        raise ValueError("validate only schedulable allocations")
    sim = simulate(tasks, arch, alloc, horizon=horizon, offsets=offsets)
    violations: list[str] = []
    for name, bound in report.task_response.items():
        observed = sim.task_response.get(name)
        if observed is None:
            continue  # no job completed within the horizon
        if bound is not None and observed > bound:
            violations.append(
                f"task {name}: observed {observed} > bound {bound}"
            )
    for (ref, medium), bound in report.msg_local_deadline.items():
        observed = sim.msg_hop_delay.get((ref, medium))
        if observed is not None and observed > bound:
            violations.append(
                f"message {ref} on {medium}: observed {observed} > "
                f"local deadline {bound}"
            )
    for ref, observed in sim.msg_delivery.items():
        _, msg = ref.resolve(tasks)
        if observed > msg.deadline:
            violations.append(
                f"message {ref}: observed end-to-end {observed} > "
                f"deadline {msg.deadline}"
            )
    violations.extend(sim.deadline_misses)
    return ValidationOutcome(
        ok=not violations, violations=violations, sim=sim
    )
