"""Tick-accurate platform simulator.

Model (one tick = one model time unit, matching the analysis):

- **Tasks**: released periodically (offset configurable), executed on
  their allocated ECU under preemptive fixed priorities.  A job that
  completes sends each of the task's messages.
- **Token-ring media**: a cyclic slot schedule (one slot per attached
  ECU, lengths from the allocation's slot table).  During ECU p's slot,
  p's highest-priority queued frame transmits; transmission is
  *packetized* -- progress accumulates across the sender's successive
  slot occurrences, matching the service model behind eq. 3 (Tindell's
  token ring splits messages into per-token packets [5]).  The slot
  overhead is modelled as margin inside the slot (the encoder sizes
  slots as rho + overhead), so the analytical bound stays safe.
- **CAN media**: whenever the bus idles, the highest-priority queued
  frame starts; transmission is non-preemptive.
- **Gateways**: a frame finishing hop i is held for the medium's
  ``gateway_service`` ticks, then queued at the gateway for hop i+1.

The simulator is deliberately independent of the analysis code: it reads
only the model and a concrete :class:`repro.analysis.Allocation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.allocation import Allocation, MsgRef
from repro.analysis.feasibility import sending_ecu_on
from repro.model.architecture import Architecture, MediumKind
from repro.model.task import TaskSet

__all__ = ["SimulationResult", "simulate"]


@dataclass
class _Job:
    task: str
    release: int
    remaining: int
    prio: int
    finished: int | None = None


@dataclass
class _Frame:
    ref: MsgRef
    created: int          # job completion time (message "release")
    path: tuple[str, ...]
    hop: int
    rho: int              # wire ticks on the current hop's medium
    prio: int
    sender: str           # ECU injecting on the current hop
    hop_arrival: int      # when it became ready at the current hop
    progress: int = 0
    hop_done: dict[str, int] = field(default_factory=dict)
    delivered: int | None = None


@dataclass
class SimulationResult:
    """Observed worst cases over the simulated horizon."""

    horizon: int
    task_response: dict[str, int] = field(default_factory=dict)
    msg_delivery: dict[MsgRef, int] = field(default_factory=dict)
    msg_hop_delay: dict[tuple[MsgRef, str], int] = field(
        default_factory=dict
    )
    completed_jobs: dict[str, int] = field(default_factory=dict)
    delivered_msgs: dict[MsgRef, int] = field(default_factory=dict)
    deadline_misses: list[str] = field(default_factory=list)


def _hyperperiod(periods: list[int]) -> int:
    from math import gcd

    h = 1
    for p in periods:
        h = h * p // gcd(h, p)
    return h


def simulate(
    tasks: TaskSet,
    arch: Architecture,
    alloc: Allocation,
    horizon: int | None = None,
    offsets: dict[str, int] | None = None,
) -> SimulationResult:
    """Run the simulation; see the module docstring.

    ``horizon`` defaults to two hyperperiods plus the largest deadline;
    ``offsets`` shifts task releases (default 0 = synchronous release,
    the critical-instant-like scenario).
    """
    offsets = offsets or {}
    periods = [t.period for t in tasks]
    if horizon is None:
        horizon = 2 * _hyperperiod(periods) + max(
            t.deadline for t in tasks
        )

    # --- static tables -------------------------------------------------
    ecu_of = dict(alloc.task_ecu)
    prio = dict(alloc.task_prio)
    msg_prio = {
        ref: alloc.msg_prio.get(ref, i)
        for i, ref in enumerate(sorted(alloc.message_path))
    }
    # Token-ring slot schedule per medium: list of (ecu, length).
    ring_sched: dict[str, list[tuple[str, int]]] = {}
    ring_round: dict[str, int] = {}
    for kname, k in arch.media.items():
        if k.kind is MediumKind.TOKEN_RING:
            sched = [
                (p, alloc.slot_ticks.get((kname, p), k.min_slot))
                for p in k.ecus
            ]
            ring_sched[kname] = sched
            ring_round[kname] = sum(length for _, length in sched)

    # --- dynamic state ---------------------------------------------------
    ready: dict[str, list[_Job]] = {p: [] for p in arch.ecu_names()}
    queues: dict[str, list[_Frame]] = {k: [] for k in arch.media}
    # CAN: one frame on the wire per medium.  Token ring: one in-progress
    # frame per (medium, slot owner), resumed whenever the slot returns.
    transmitting: dict[str, _Frame | None] = {k: None for k in arch.media}
    ring_current: dict[tuple[str, str], _Frame | None] = {}
    gateway_hold: list[tuple[int, _Frame]] = []  # (ready time, frame)
    result = SimulationResult(horizon=horizon)

    def observe_task(job: _Job, now: int) -> None:
        resp = now - job.release
        prev = result.task_response.get(job.task, 0)
        result.task_response[job.task] = max(prev, resp)
        result.completed_jobs[job.task] = (
            result.completed_jobs.get(job.task, 0) + 1
        )
        if resp > tasks[job.task].deadline:
            result.deadline_misses.append(
                f"task {job.task} response {resp} at t={now}"
            )

    def send_messages(task_name: str, now: int) -> None:
        task = tasks[task_name]
        for i, msg in enumerate(task.messages):
            ref = MsgRef(task_name, i)
            path = alloc.message_path.get(ref)
            if path is None:
                continue
            if not path:
                # Intra-ECU: instantaneous delivery.
                result.msg_delivery[ref] = max(
                    result.msg_delivery.get(ref, 0), 0
                )
                result.delivered_msgs[ref] = (
                    result.delivered_msgs.get(ref, 0) + 1
                )
                continue
            k = arch.media[path[0]]
            frame = _Frame(
                ref=ref,
                created=now,
                path=path,
                hop=0,
                rho=k.transmission_ticks(msg.size_bits),
                prio=msg_prio[ref],
                sender=sending_ecu_on(arch, path, ecu_of[task_name], 0),
                hop_arrival=now,
            )
            queues[path[0]].append(frame)

    def finish_hop(frame: _Frame, now: int) -> None:
        medium = frame.path[frame.hop]
        delay = now - frame.hop_arrival
        key = (frame.ref, medium)
        result.msg_hop_delay[key] = max(
            result.msg_hop_delay.get(key, 0), delay
        )
        if frame.hop == len(frame.path) - 1:
            total = now - frame.created
            result.msg_delivery[frame.ref] = max(
                result.msg_delivery.get(frame.ref, 0), total
            )
            result.delivered_msgs[frame.ref] = (
                result.delivered_msgs.get(frame.ref, 0) + 1
            )
            _, msg = frame.ref.resolve(tasks)
            if total > msg.deadline:
                result.deadline_misses.append(
                    f"message {frame.ref} delivery {total} at t={now}"
                )
            return
        nxt = frame.path[frame.hop + 1]
        service = arch.media[nxt].gateway_service
        frame.hop += 1
        frame.rho = arch.media[nxt].transmission_ticks(
            frame.ref.resolve(tasks)[1].size_bits
        )
        frame.sender = sending_ecu_on(
            arch, frame.path, ecu_of[frame.ref.sender], frame.hop
        )
        frame.progress = 0
        gateway_hold.append((now + service, frame))

    # --- main loop -------------------------------------------------------
    for now in range(horizon):
        # Releases.
        for t in tasks:
            off = offsets.get(t.name, 0)
            if now >= off and (now - off) % t.period == 0:
                ready[ecu_of[t.name]].append(
                    _Job(
                        task=t.name,
                        release=now,
                        remaining=t.wcet[ecu_of[t.name]],
                        prio=prio[t.name],
                    )
                )
        # Gateway holds maturing.
        still: list[tuple[int, _Frame]] = []
        for when, frame in gateway_hold:
            if when <= now:
                frame.hop_arrival = now
                queues[frame.path[frame.hop]].append(frame)
            else:
                still.append((when, frame))
        gateway_hold[:] = still

        # CPUs: run the highest-priority ready job one tick.
        for ecu, jobs in ready.items():
            if not jobs:
                continue
            jobs.sort(key=lambda j: (j.prio, j.release))
            job = jobs[0]
            job.remaining -= 1
            if job.remaining == 0:
                jobs.pop(0)
                observe_task(job, now + 1)
                send_messages(job.task, now + 1)

        # Buses.
        for kname, k in arch.media.items():
            queue = queues[kname]
            if k.kind is MediumKind.CAN:
                frame = transmitting[kname]
                if frame is None and queue:
                    queue.sort(key=lambda f: (f.prio, f.hop_arrival))
                    frame = queue.pop(0)
                    frame.progress = 0
                    transmitting[kname] = frame
                if frame is not None:
                    frame.progress += 1
                    if frame.progress >= frame.rho:
                        transmitting[kname] = None
                        finish_hop(frame, now + 1)
                continue
            # Token ring: find the slot owner at this tick.
            sched = ring_sched[kname]
            pos = now % ring_round[kname]
            acc = 0
            owner = sched[0][0]
            for p, length in sched:
                if pos < acc + length:
                    owner = p
                    break
                acc += length
            key = (kname, owner)
            frame = ring_current.get(key)
            if frame is None:
                candidates = [f for f in queue if f.sender == owner]
                if candidates:
                    candidates.sort(key=lambda f: (f.prio, f.hop_arrival))
                    frame = candidates[0]
                    queue.remove(frame)
                    frame.progress = 0
                    ring_current[key] = frame
            if frame is not None:
                frame.progress += 1
                if frame.progress >= frame.rho:
                    ring_current[key] = None
                    finish_hop(frame, now + 1)
    return result
