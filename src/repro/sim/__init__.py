"""Discrete-time schedule simulation.

A tick-accurate simulator of the modelled platform: preemptive
fixed-priority CPU scheduling per ECU, TDMA/token-ring slot rotation and
CAN priority arbitration on the buses, gateway store-and-forward with
service delay.

Its purpose is *validation*: the response-time analysis of
:mod:`repro.analysis` computes worst-case bounds; simulating a concrete
allocation (synchronous release at t=0 approximates the critical
instant) must never observe a task response or message delivery beyond
its analytical bound.  The test suite fuzzes this invariant, closing the
loop encoder -> analysis -> simulation.
"""

from repro.sim.engine import SimulationResult, simulate
from repro.sim.validate import validate_against_analysis

__all__ = ["simulate", "SimulationResult", "validate_against_analysis"]
