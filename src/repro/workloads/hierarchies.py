"""The hierarchical architectures A, B and C of figure 2.

All three host the case-study task set; table 4 minimizes the sum of the
TRTs of all token-ring media.

- **Architecture A**: two 4-ECU rings (p0-p3 and p4-p7) joined by the
  dedicated gateway node g8, which cannot host tasks.
- **Architecture B**: three rings -- p0-p3 with gateway g8, p4-p7 with
  gateway g9, and a backbone ring {g8, g9, p10, p11}; both gateways are
  pure forwarding nodes.
- **Architecture C**: two rings sharing the ordinary ECU p0 as gateway
  (p0-p3 on the lower ring, p0+p4-p7 on the upper); p0 *can* host tasks,
  which is why table 4 reports the same optimum as the flat system.
- **C/CAN variant**: architecture C with the upper medium replaced by a
  CAN bus (the section 6 experiment "exchanging the above media of
  architecture C by a CAN bus").
"""

from __future__ import annotations

from repro.model.architecture import (
    CAN,
    TOKEN_RING,
    Architecture,
    Ecu,
    Medium,
)
from repro.workloads.tindell import TICK_US

__all__ = [
    "architecture_a",
    "architecture_b",
    "architecture_c",
    "architecture_c_can",
]

_RING_PARAMS = dict(
    bit_rate=1_000_000,
    tick_us=TICK_US,
    frame_overhead_bits=50,
    slot_overhead=1,
    min_slot=8,
    gateway_service=5,
)

_CAN_PARAMS = dict(
    bit_rate=1_000_000,
    tick_us=TICK_US,
    frame_overhead_bits=50,
    gateway_service=5,
)


def architecture_a() -> Architecture:
    """Two rings bridged by a dedicated (task-free) gateway."""
    ecus = [Ecu(f"p{i}") for i in range(8)]
    ecus.append(Ecu("g8", allow_tasks=False))
    return Architecture(
        ecus=ecus,
        media=[
            Medium("lower", TOKEN_RING,
                   ("p0", "p1", "p2", "p3", "g8"), **_RING_PARAMS),
            Medium("upper", TOKEN_RING,
                   ("p4", "p5", "p6", "p7", "g8"), **_RING_PARAMS),
        ],
    )


def architecture_b() -> Architecture:
    """Three rings: two leaf rings and a backbone, two gateways."""
    ecus = [Ecu(f"p{i}") for i in range(8)]
    ecus += [
        Ecu("g8", allow_tasks=False),
        Ecu("g9", allow_tasks=False),
        Ecu("p10"),
        Ecu("p11"),
    ]
    return Architecture(
        ecus=ecus,
        media=[
            Medium("left", TOKEN_RING,
                   ("p0", "p1", "p2", "p3", "g8"), **_RING_PARAMS),
            Medium("right", TOKEN_RING,
                   ("p4", "p5", "p6", "p7", "g9"), **_RING_PARAMS),
            Medium("backbone", TOKEN_RING,
                   ("g8", "g9", "p10", "p11"), **_RING_PARAMS),
        ],
    )


def architecture_c() -> Architecture:
    """Two rings sharing the ordinary ECU p0 as the gateway."""
    ecus = [Ecu(f"p{i}") for i in range(8)]
    return Architecture(
        ecus=ecus,
        media=[
            Medium("lower", TOKEN_RING,
                   ("p0", "p1", "p2", "p3"), **_RING_PARAMS),
            Medium("upper", TOKEN_RING,
                   ("p0", "p4", "p5", "p6", "p7"), **_RING_PARAMS),
        ],
    )


def architecture_c_can() -> Architecture:
    """Architecture C with the upper medium swapped for a CAN bus."""
    ecus = [Ecu(f"p{i}") for i in range(8)]
    return Architecture(
        ecus=ecus,
        media=[
            Medium("lower", TOKEN_RING,
                   ("p0", "p1", "p2", "p3"), **_RING_PARAMS),
            Medium("upper", CAN,
                   ("p0", "p4", "p5", "p6", "p7"), **_CAN_PARAMS),
        ],
    )
