"""Synthetic re-creation of the Tindell/Burns/Wellings case study [5].

The paper's headline experiment allocates the 43-task, 12-transaction
task set of [5] onto 8 ECUs connected by a token ring, minimizing the
Token Rotation Time (TRT).  The original 1992 table constants are not
reproduced here (see DESIGN.md); instead this module builds a
deterministic synthetic system with the same *structure*:

- 8 ECUs on one token ring,
- 43 tasks in 12 transactions (chains of 2-5 tasks) plus standalones,
- sensor/actuator placement restrictions pinning chain endpoints,
- middle tasks restricted to small candidate ECU clusters,
- redundant (separated) task pairs,
- messages between consecutive chain tasks with end-to-end deadlines.

Tightness is tuned so the system is feasible but constrained enough that
a budgeted simulated-annealing walk usually lands above the optimum --
the shape of the paper's table 1.

Time base: 1 tick = 100 us; a TRT of ~85 ticks reads as ~8.5 ms.
"""

from __future__ import annotations

from repro.model.architecture import (
    TOKEN_RING,
    Architecture,
    Ecu,
    Medium,
)
from repro.model.task import Message, Task, TaskSet

__all__ = [
    "TICK_US",
    "ticks_to_ms",
    "tindell_architecture",
    "tindell_taskset",
    "tindell_partition",
    "PARTITION_SIZES",
]

#: Microseconds per tick of the workload time base.
TICK_US = 100


def ticks_to_ms(ticks: int) -> float:
    """Convert workload ticks to milliseconds (for paper-style tables)."""
    return ticks * TICK_US / 1000.0


def tindell_architecture(
    n_ecus: int = 8, kind=TOKEN_RING, name: str = "ring"
) -> Architecture:
    """The 8-ECU single-bus platform of [5].

    ``kind=CAN`` builds the CAN variant of table 1's second experiment.
    1 Mbit/s wire -> a 100-bit frame costs 1 tick (100 us).
    """
    ecus = [Ecu(f"p{i}") for i in range(n_ecus)]
    medium = Medium(
        name,
        kind,
        tuple(e.name for e in ecus),
        bit_rate=1_000_000,
        tick_us=TICK_US,  # 1 Mbit/s: a 100-bit frame costs 1 tick
        frame_overhead_bits=50,
        slot_overhead=1,
        min_slot=3,
        gateway_service=5,
    )
    return Architecture(ecus=ecus, media=[medium])


#: (chain length, period ticks, task utilization approx, msg bits)
_CHAINS: list[tuple[int, int, float, int]] = [
    (5, 1000, 0.09, 1050),
    (4, 500, 0.08, 750),
    (4, 500, 0.10, 450),
    (4, 400, 0.07, 750),
    (4, 1000, 0.11, 1350),
    (4, 250, 0.06, 450),
    (3, 400, 0.09, 1050),
    (3, 500, 0.08, 750),
    (3, 250, 0.07, 450),
    (3, 1000, 0.10, 1650),
    (2, 200, 0.08, 450),
    (2, 500, 0.09, 750),
]

#: Standalone tasks completing the 43: (period, utilization).
_STANDALONE: list[tuple[int, float]] = [(400, 0.10), (250, 0.08)]

#: Redundant pairs (fault-tolerant replicas) that must be separated.
_SEPARATED: list[tuple[str, str]] = [
    ("c1_t0", "c2_t0"),
    ("c4_t1", "c5_t1"),
    ("s0", "s1"),
]


def _chain_tasks(
    chain_idx: int,
    length: int,
    period: int,
    util: float,
    msg_bits: int,
    n_ecus: int,
) -> list[Task]:
    """One transaction: sensor -> processing* -> actuator."""
    tasks: list[Task] = []
    sensor_ecu = f"p{chain_idx % n_ecus}"
    # Short-period chains keep both endpoints on the sensor node so their
    # tight message deadlines can be met without touching the ring.
    if period <= 250:
        actuator_ecu = sensor_ecu
    else:
        actuator_ecu = f"p{(chain_idx + 3) % n_ecus}"
    wcet = max(2, int(period * util))
    # Message deadline: a slice of the period, long enough for the wire
    # plus a realistic TDMA round (also across the 3-hop paths of the
    # fig. 2 hierarchies), short enough to stay constraining.
    msg_deadline = max(60, period * 2 // 5)
    for pos in range(length):
        name = f"c{chain_idx}_t{pos}"
        if pos == 0:
            allowed = frozenset({sensor_ecu})
        elif pos == length - 1:
            allowed = frozenset({actuator_ecu})
        elif period <= 250:
            # Short-period chains: tight message deadlines; middles must
            # be co-locatable with the pinned sensor node.
            base = (chain_idx + pos) % n_ecus
            allowed = frozenset({sensor_ecu, f"p{base}"})
        else:
            # Middle tasks: a 3-ECU cluster around the chain's home.
            base = (chain_idx + pos) % n_ecus
            allowed = frozenset(
                {f"p{base}", f"p{(base + 1) % n_ecus}",
                 f"p{(base + 2) % n_ecus}"}
            )
        messages = ()
        if pos < length - 1:
            messages = (
                Message(f"c{chain_idx}_t{pos + 1}", msg_bits, msg_deadline),
            )
        # Mild heterogeneity: +-25% WCET by ECU parity.
        wcets = {}
        for i in range(n_ecus):
            p = f"p{i}"
            if p not in allowed:
                continue
            factor = 1.0 + 0.25 * ((i + chain_idx) % 3 - 1) / 2
            wcets[p] = max(1, int(wcet * factor))
        deadline = period - (length - 1 - pos) * msg_deadline
        deadline = max(deadline, wcet * 2 + 10)
        deadline = min(deadline, period)
        tasks.append(
            Task(
                name=name,
                period=period,
                wcet=wcets,
                deadline=deadline,
                messages=messages,
                allowed=allowed,
            )
        )
    return tasks


def tindell_taskset(n_ecus: int = 8) -> TaskSet:
    """The full 43-task system (12 chains + 2 standalone tasks)."""
    tasks: list[Task] = []
    for idx, (length, period, util, bits) in enumerate(_CHAINS):
        tasks.extend(
            _chain_tasks(idx, length, period, util, bits, n_ecus)
        )
    for i, (period, util) in enumerate(_STANDALONE):
        wcet = max(2, int(period * util))
        home = (5 * i + 1) % n_ecus
        allowed = frozenset(
            {f"p{home}", f"p{(home + 4) % n_ecus}"}
        )
        tasks.append(
            Task(
                name=f"s{i}",
                period=period,
                wcet={p: wcet for p in allowed},
                deadline=period,
                allowed=allowed,
            )
        )
    # Attach separation requirements.
    by_name = {t.name: t for t in tasks}
    for a, b in _SEPARATED:
        for x, y in ((a, b), (b, a)):
            t = by_name[x]
            by_name[x] = Task(
                name=t.name,
                period=t.period,
                wcet=dict(t.wcet),
                deadline=t.deadline,
                messages=t.messages,
                allowed=t.allowed,
                separated_from=t.separated_from | {y},
                release_jitter=t.release_jitter,
            )
    return TaskSet(list(by_name.values()), name="tindell43")


#: Task-set sizes of the paper's table 3 partitions.
PARTITION_SIZES = (7, 12, 20, 30, 43)


def tindell_partition(n_tasks: int, n_ecus: int = 8) -> TaskSet:
    """A prefix partition of the case study with ``n_tasks`` tasks,
    mirroring the paper's table 3 ("we partitioned the example of [5] in
    smaller portions").  Whole chains are taken first so communication
    structure is preserved; messages to dropped tasks are pruned."""
    full = tindell_taskset(n_ecus)
    names = full.names()[:n_tasks]
    return full.subset(names, name=f"tindell{n_tasks}")
