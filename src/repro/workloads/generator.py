"""Random task-set generation for fuzzing and synthetic benchmarks.

Utilizations are drawn with **UUniFast-discard** (Bini & Buttazzo's
unbiased uniform sampling over the utilization simplex, re-drawing
vectors with any component above ``max_task_util``), periods
log-uniformly from a realistic grid, and an adjustable fraction of tasks
is linked into communication chains with placement restrictions.
"""

from __future__ import annotations

import random

from repro.model.architecture import Architecture
from repro.model.task import Message, Task, TaskSet

__all__ = ["uunifast_discard", "random_taskset"]

_PERIOD_GRID = (200, 250, 400, 500, 800, 1000)


def uunifast_discard(
    rng: random.Random,
    n: int,
    total_util: float,
    max_task_util: float = 0.6,
    max_tries: int = 1000,
) -> list[float]:
    """UUniFast with rejection of vectors exceeding ``max_task_util``."""
    for _ in range(max_tries):
        utils = []
        remaining = total_util
        for i in range(1, n):
            nxt = remaining * rng.random() ** (1.0 / (n - i))
            utils.append(remaining - nxt)
            remaining = nxt
        utils.append(remaining)
        if all(u <= max_task_util for u in utils):
            return utils
    raise RuntimeError(
        f"could not sample {n} utilizations totalling {total_util}"
    )


def random_taskset(
    arch: Architecture,
    n_tasks: int,
    total_util: float,
    seed: int = 0,
    chain_fraction: float = 0.5,
    msg_bits: int = 200,
    restrict_fraction: float = 0.3,
) -> TaskSet:
    """A random system on ``arch``.

    ``total_util`` is the aggregate CPU utilization (spread over the
    architecture's task-capable ECUs); ``chain_fraction`` of the tasks
    are linked into 2-3 task chains with messages; ``restrict_fraction``
    of the tasks get a random 2-ECU placement restriction.
    """
    rng = random.Random(seed)
    ecus = arch.task_capable_ecus()
    utils = uunifast_discard(rng, n_tasks, total_util)
    tasks: list[Task] = []
    for i, u in enumerate(utils):
        period = rng.choice(_PERIOD_GRID)
        wcet = max(1, int(u * period))
        deadline = period if rng.random() < 0.7 else min(
            period, max(wcet * 2 + 5, int(period * rng.uniform(0.6, 1.0)))
        )
        allowed = None
        if rng.random() < restrict_fraction and len(ecus) >= 2:
            allowed = frozenset(rng.sample(ecus, 2))
        hosts = sorted(allowed) if allowed else ecus
        wcets = {
            p: max(1, int(wcet * rng.uniform(0.8, 1.25))) for p in hosts
        }
        tasks.append(
            Task(
                name=f"t{i}",
                period=period,
                wcet=wcets,
                deadline=deadline,
                allowed=allowed,
            )
        )
    # Wire chains among same-period tasks (message semantics need a
    # shared activation rate).
    by_period: dict[int, list[int]] = {}
    for i, t in enumerate(tasks):
        by_period.setdefault(t.period, []).append(i)
    n_linked = int(n_tasks * chain_fraction)
    linked = 0
    for period, members in sorted(by_period.items()):
        idx = 0
        while idx + 1 < len(members) and linked < n_linked:
            a, b = members[idx], members[idx + 1]
            src = tasks[a]
            deadline = max(20, period // 4)
            tasks[a] = Task(
                name=src.name,
                period=src.period,
                wcet=dict(src.wcet),
                deadline=src.deadline,
                messages=src.messages
                + (Message(tasks[b].name, msg_bits, deadline),),
                allowed=src.allowed,
            )
            linked += 2
            idx += 2
    return TaskSet(tasks, name=f"random{n_tasks}-u{total_util:.1f}-s{seed}")
