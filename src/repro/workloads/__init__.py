"""Workloads reproducing the paper's experimental setups.

Time base: 1 tick = 100 microseconds (0.1 ms), so the paper's
millisecond-scale TRT values map to ~85-ish tick TDMA rounds.

- :mod:`repro.workloads.tindell` -- a faithfully *structured* synthetic
  re-creation of the Tindell/Burns/Wellings [5] case study: 43 tasks in
  12 transactions on 8 ECUs with a token ring, placement restrictions
  and redundant pairs (the original table constants are not available;
  see the substitution note in DESIGN.md),
- :mod:`repro.workloads.scaling` -- the table 2 architecture-scaling
  family (token ring with a growing number of ECUs) and the table 3
  task-scaling partitions,
- :mod:`repro.workloads.hierarchies` -- architectures A, B and C of
  figure 2 (plus the CAN-swap variant of section 6),
- :mod:`repro.workloads.generator` -- random task-set generation
  (UUniFast-discard) for fuzzing and extra benchmarks.
"""

from repro.workloads.generator import random_taskset
from repro.workloads.hierarchies import (
    architecture_a,
    architecture_b,
    architecture_c,
    architecture_c_can,
)
from repro.workloads.scaling import ring_architecture, scaling_taskset
from repro.workloads.tindell import (
    TICK_US,
    tindell_architecture,
    tindell_partition,
    tindell_taskset,
    ticks_to_ms,
)

__all__ = [
    "TICK_US",
    "ticks_to_ms",
    "tindell_architecture",
    "tindell_taskset",
    "tindell_partition",
    "ring_architecture",
    "scaling_taskset",
    "architecture_a",
    "architecture_b",
    "architecture_c",
    "architecture_c_can",
    "random_taskset",
]
