"""Scaling families for tables 2 and 3.

Table 2 grows the *architecture*: a fixed 30-task system allocated to a
token ring with 8, 16, 25, 32, 45, 64 ECUs.  Table 3 grows the *task
set*: partitions of the case study (7, 12, 20, 30, 43 tasks) on the
fixed 8-ECU ring (see :func:`repro.workloads.tindell.tindell_partition`).
"""

from __future__ import annotations

from repro.model.architecture import TOKEN_RING, Architecture, Ecu, Medium
from repro.model.task import TaskSet
from repro.workloads.tindell import TICK_US, tindell_partition

__all__ = ["ring_architecture", "scaling_taskset", "ECU_COUNTS"]

#: The ECU counts of the paper's table 2.
ECU_COUNTS = (8, 16, 25, 32, 45, 64)


def ring_architecture(n_ecus: int) -> Architecture:
    """A single token ring with ``n_ecus`` ECUs (table 2 platform)."""
    ecus = [Ecu(f"p{i}") for i in range(n_ecus)]
    return Architecture(
        ecus=ecus,
        media=[
            Medium(
                "ring",
                TOKEN_RING,
                tuple(e.name for e in ecus),
                bit_rate=1_000_000,
                tick_us=TICK_US,
                frame_overhead_bits=50,
                slot_overhead=1,
                min_slot=3,
            )
        ],
    )


def scaling_taskset(n_ecus: int, n_tasks: int = 30) -> TaskSet:
    """The table 2 task system: the 30-task partition of the case study
    with placement restrictions re-spread over ``n_ecus`` ECUs.

    The paper keeps the task set fixed while growing the architecture;
    re-spreading the pi_i sets over the larger platform models the same
    situation (an unchanged application integrated onto more hardware).
    Message deadlines are scaled with the platform: a token ring with n
    ECUs has a minimum TDMA round of n * min_slot, so bus deadlines that
    were meaningful on 8 ECUs would be structurally impossible on 64 --
    the deadline scale factor keeps the *relative* tightness constant.
    """
    base = tindell_partition(n_tasks, n_ecus=n_ecus)
    scale = max(1, (n_ecus + 7) // 8)
    if scale == 1:
        return base
    from repro.model.task import Message, Task, TaskSet

    tasks = []
    for t in base:
        tasks.append(
            Task(
                name=t.name,
                period=t.period,
                wcet=dict(t.wcet),
                deadline=t.deadline,
                messages=tuple(
                    Message(m.target, m.size_bits,
                            min(t.period, m.deadline * scale))
                    for m in t.messages
                ),
                allowed=t.allowed,
                separated_from=t.separated_from,
                release_jitter=t.release_jitter,
            )
        )
    return TaskSet(tasks, name=f"{base.name}-ecus{n_ecus}")
