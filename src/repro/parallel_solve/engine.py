"""Process-parallel BIN_SEARCH: speculative probes + solver races.

The engine owns a fleet of probe workers arranged as ``groups x racers``:

- each *group* serves one probe at a time, and the groups' probes sit at
  the quantiles of the open interval (:class:`~repro.parallel_solve.
  plan.SpeculativeSearch` keeps the bookkeeping sound and sequential-
  equivalent);
- within a group, all *racers* solve the identical probe with diversified
  search heuristics (:mod:`repro.parallel_solve.race`); the first answer
  wins, the losers are cancelled, and short learnt clauses flow between
  the racers through bounded queues (verified and proof-logged on import,
  so ``--certify`` still checks).

Under the ``fork`` start method the workers inherit the parent's
finished encoding copy-on-write -- no per-worker encode cost and no
pickling; under ``spawn`` each worker rebuilds the (deterministic)
encoding from the serialized system.  The parent encoding is never
probed, so a respawned worker forks a pristine copy and replays the
group's probe history to realign guards with its surviving peers.

Fault handling mirrors :mod:`repro.parallel`: a worker death (EOF on its
pipe) triggers a bounded number of respawns; cancellation is cooperative
with one solve-slice latency; budget / time-limit expiry winds the fleet
down gracefully and reports an honest anytime bound (``proven`` False).

Bounds providers (:mod:`repro.bounds`) join the fleet in two modes:
``bounds_mode="auto"`` resolves and audits them before the first
dispatch (an audited witness then replaces the unconstrained SOLVE);
``"race"`` runs the resolver as a sidecar thread whose audited bounds
tighten the shared interval mid-flight, cancelling probes they decide.
Either way the certified optimum is bit-identical to a cold run's.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import asdict, dataclass, field
from multiprocessing.connection import wait as conn_wait

from repro.chaos import chaos_point
from repro.core.optimize import (
    CHECKPOINT_FAILURE_LIMIT,
    OptimizationOutcome,
    ProbeLog,
)
from repro.parallel_solve.plan import ProbeSpec, SpeculativeSearch
from repro.parallel_solve.race import default_race_configs
from repro.parallel_solve.worker import WorkerSpec, probe_worker_main

__all__ = ["speculative_minimize"]

#: Hard cap on worker respawns per run (multiplied by the fleet size).
_RESPAWN_FACTOR = 2

#: Crashes after which one worker slot is quarantined for good: a slot
#: that keeps dying (bad core, poisoned inherited state, scheduled
#: chaos) must stop eating the global respawn budget.  With every slot
#: quarantined the engine reports "all probe workers failed" and the
#: supervisor chain degrades to the sequential single-process stages.
_CRASH_QUARANTINE = 3

#: Attempts (with backoff) to start one worker process before giving up
#: on that slot.
_SPAWN_ATTEMPTS = 3


@dataclass
class _Worker:
    """Parent-side handle for one probe worker process."""

    wid: int
    gid: int
    racer: int
    spec: WorkerSpec | None = None
    proc: object = None
    conn: object = None
    inbox: object = None
    peers: list = field(default_factory=list)
    conflicts: int = 0
    decisions: int = 0
    imported: int = 0
    rejected: int = 0
    proof_lines: int = 0


@dataclass
class _Group:
    """One probe slot: ``racers`` workers solving the same probe."""

    gid: int
    workers: list = field(default_factory=list)
    #: Probe currently being raced (None = idle or draining acks).
    spec: ProbeSpec | None = None
    #: Probe id the outstanding acks belong to.
    ack_pid: int | None = None
    #: Workers that still owe an ack (result / cancelled / death).
    pending: set = field(default_factory=set)
    #: True once the current probe is resolved (answer or cancel).
    answered: bool = False
    #: Bounds of all resolved probes, in dispatch order -- the history a
    #: respawned worker replays to realign its guard numbering.
    completed: list = field(default_factory=list)
    dead: bool = False

    @property
    def idle(self) -> bool:
        return self.spec is None and not self.pending and not self.dead


def speculative_minimize(allocator, objective, request, faults=None):
    """Minimize ``objective`` with the parallel engine.

    ``allocator`` is a :class:`repro.core.allocator.Allocator`;
    ``request`` a :class:`repro.core.api.SolveRequest` whose
    ``effective_groups()`` / ``effective_racers()`` size the fleet.
    ``faults`` (tests only) maps worker id -> probe ordinal at which that
    worker ``os._exit``\\ s, exercising the respawn path.

    Returns the same :class:`~repro.core.allocator.AllocationResult` a
    sequential :meth:`Allocator.minimize` would -- bit-identical certified
    optimum, ``certificate`` populated when ``request.certify``.
    """
    ckpt = allocator._as_checkpoint(request.checkpoint)
    if ckpt is not None and ckpt.started:
        closed = (
            ckpt.feasible is False
            or (
                ckpt.left is not None
                and ckpt.right is not None
                and ckpt.left >= ckpt.right
            )
        )
        if closed:
            # Nothing left to parallelize; the sequential path also
            # handles the [R, R] re-certification corner.
            return allocator._minimize_incremental(
                objective, request, ckpt, proof_log=request.proof_log,
            )
    enc, cost_var, lb, ub, enc_secs = allocator._encode(objective)
    assert cost_var is not None
    budget = request.budget
    if budget is not None:
        budget.start()

    groups_n = request.effective_groups()
    racers_n = request.effective_racers()
    share = bool(request.share_clauses) and racers_n > 1
    race_cfgs = default_race_configs(racers_n)

    ctx = mp.get_context()
    use_fork = ctx.get_start_method() == "fork"
    if use_fork:
        blob = None
        enc_pack = (allocator.tasks, allocator.arch, enc, cost_var, lb)
    else:
        from repro.io import system_to_dict

        blob = system_to_dict(allocator.tasks, allocator.arch)
        enc_pack = None

    workers: dict[int, _Worker] = {}
    groups: dict[int, _Group] = {}
    wid = 0
    for g in range(groups_n):
        grp = _Group(gid=g)
        groups[g] = grp
        inboxes = [
            ctx.Queue(maxsize=512) if share else None
            for _ in range(racers_n)
        ]
        for r in range(racers_n):
            w = _Worker(wid=wid, gid=g, racer=r)
            w.inbox = inboxes[r]
            w.peers = [
                q for i, q in enumerate(inboxes) if i != r and q is not None
            ]
            w.spec = WorkerSpec(
                worker_id=wid,
                group=g,
                racer=r,
                system_blob=blob,
                config=allocator.config,
                objective=objective,
                certify=request.certify,
                share=share,
                share_max_len=request.share_max_len,
                die_at=(faults or {}).get(wid),
                race_config=race_cfgs[r],
                chaos=request.chaos,
            )
            grp.workers.append(wid)
            workers[wid] = w
            wid += 1

    search = SpeculativeSearch(lb, ub)
    out = OptimizationOutcome(feasible=False, optimum=None, proven=False)
    certificate = None
    if request.certify:
        from repro.certify import CertifiedResult

        certificate = CertifiedResult()
    best_blob: dict | None = None
    best_cost: int | None = None
    probe_group: dict[int, int] = {}
    conn_map: dict[object, _Worker] = {}
    respawns = 0
    respawn_cap = _RESPAWN_FACTOR * max(1, request.retries) * len(workers)
    crash_counts: dict[int, int] = {w: 0 for w in workers}
    quarantined: set[int] = set()
    spawn_failures = 0

    if ckpt is not None and ckpt.started:
        if ckpt.lower != lb or ckpt.upper != ub:
            raise ValueError(
                f"checkpoint range [{ckpt.lower}, {ckpt.upper}] "
                f"does not match this search's [{lb}, {ub}]"
            )
        out.resumed = True
        out.probes = [ProbeLog(**p) for p in ckpt.probes]
        out.feasible = True
        search.resume(ckpt.left, ckpt.right, True)
        if ckpt.payload:
            best_blob = dict(ckpt.payload)
            best_cost = search.right

    witness_seeded = False
    bounds_meta: dict = {}
    ckpt_failures = [0]  # consecutive failed saves

    def sync_checkpoint() -> None:
        if ckpt is None:
            return
        ckpt.lower, ckpt.upper = lb, ub
        ckpt.left = search.left
        ckpt.right = search.right
        ckpt.feasible = search.feasible
        ckpt.probes = [asdict(p) for p in out.probes]
        if best_blob:
            ckpt.payload = best_blob
        if ckpt.path is None:
            return
        try:
            ckpt.save()
        except OSError:
            # Same policy as the sequential search: persistence
            # degrades, the answer does not.
            out.checkpoint_errors += 1
            ckpt_failures[0] += 1
            if ckpt_failures[0] >= CHECKPOINT_FAILURE_LIMIT:
                ckpt.path = None
                out.checkpoint_disabled = True
        else:
            ckpt_failures[0] = 0

    def spawn(w: _Worker, history: list) -> bool:
        """Start one worker process; bounded retry with backoff on
        spawn failure (fork/pipe EAGAIN, injected ``worker.spawn``
        io-error).  False = the slot could not be started."""
        nonlocal conn_map, spawn_failures
        w.spec.history = list(history)
        for attempt in range(_SPAWN_ATTEMPTS):
            parent_conn = child_conn = None
            try:
                chaos_point("worker.spawn")
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=probe_worker_main,
                    args=(child_conn, w.spec, w.inbox, w.peers, enc_pack),
                    daemon=True,
                )
                proc.start()
            except OSError:
                spawn_failures += 1
                for c in (parent_conn, child_conn):
                    if c is not None:
                        try:
                            c.close()
                        except OSError:
                            pass
                time.sleep(0.02 * (2 ** attempt))
                continue
            # Close our copy of the child end NOW: later forks must not
            # inherit it, or a worker crash would never surface as EOF.
            child_conn.close()
            w.proc, w.conn = proc, parent_conn
            conn_map[parent_conn] = w
            return True
        w.proc = w.conn = None
        return False

    def safe_send(w: _Worker, msg) -> bool:
        if w.conn is None:
            return False
        try:
            w.conn.send(msg)
            return True
        except (OSError, ValueError):
            handle_death(w)
            return False

    def log_probe(spec: ProbeSpec, gid: int, *, payload=None, hit=None,
                  cancelled=False) -> None:
        out.probes.append(ProbeLog(
            lo=spec.lo,
            hi=spec.hi if spec.hi is not None else ub,
            sat=bool(payload and payload["sat"]),
            cost=payload["cost"] if payload else None,
            seconds=payload["seconds"] if payload else 0.0,
            conflicts=payload["conflicts"] if payload else 0,
            decisions=payload["decisions"] if payload else 0,
            speculative=True,
            hit=hit,
            cancelled=cancelled,
            group=gid,
        ))
        if certificate is not None:
            cert = payload["certificate"] if payload else None
            if cert is None:
                from repro.certify import ProbeCertificate

                cert = ProbeCertificate(
                    index=0, kind="skipped", ok=True,
                    detail="cancelled as obsolete" if cancelled else None,
                )
            cert.index = len(certificate.probes)
            certificate.add(cert)

    def cancel_probe(pid: int) -> None:
        """An in-flight probe became obsolete: cancel its group."""
        grp = groups[probe_group[pid]]
        if grp.spec is None or grp.spec.probe_id != pid:
            return
        spec = grp.spec
        search.on_cancelled(pid)
        grp.spec = None
        grp.answered = True
        grp.completed.append((spec.lo, spec.hi))
        for wid2 in list(grp.pending):
            safe_send(workers[wid2], ("cancel", pid))
        log_probe(spec, grp.gid, cancelled=True)

    def handle_death(w: _Worker, *, permanent: bool = False) -> None:
        nonlocal respawns
        if w.conn is not None:
            conn_map.pop(w.conn, None)
            try:
                w.conn.close()
            except OSError:
                pass
            w.conn = None
        if w.proc is not None:
            w.proc.join(timeout=1.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
        grp = groups[w.gid]
        grp.pending.discard(w.wid)
        crash_counts[w.wid] += 1
        if (
            not permanent
            and respawns < respawn_cap
            and crash_counts[w.wid] < _CRASH_QUARANTINE
        ):
            respawns += 1
            w.spec.die_at = None  # an injected crash fires only once
            if spawn(w, grp.completed):
                if grp.spec is not None and not grp.answered:
                    # Rejoin the race on the probe still in flight.
                    grp.pending.add(w.wid)
                    safe_send(w, (
                        "probe", grp.spec.probe_id,
                        grp.spec.lo, grp.spec.hi, None,
                    ))
                return
        # No respawn (cap reached, quarantined, or the respawn itself
        # failed): the group shrinks; with no racer left it dies.
        quarantined.add(w.wid)
        if all(workers[x].conn is None for x in grp.workers):
            grp.dead = True
            if grp.spec is not None and not grp.answered:
                pid = grp.spec.probe_id
                spec = grp.spec
                search.on_cancelled(pid)
                grp.spec = None
                grp.answered = True
                log_probe(spec, grp.gid, cancelled=True)

    def handle_result(w: _Worker, pid: int, payload: dict) -> None:
        grp = groups[w.gid]
        w.conflicts += payload["conflicts"]
        w.decisions += payload["decisions"]
        w.imported = payload["imported"]
        w.rejected = payload["rejected"]
        w.proof_lines = max(w.proof_lines, payload["proof_lines"])
        if pid != grp.ack_pid:
            return  # stale answer for a long-resolved probe
        grp.pending.discard(w.wid)
        if grp.answered:
            return  # a peer racer already won this probe
        grp.answered = True
        spec = grp.spec
        grp.spec = None
        grp.completed.append((spec.lo, spec.hi))
        for wid2 in list(grp.pending):
            safe_send(workers[wid2], ("cancel", pid))
        hit, obsolete = search.on_result(pid, payload["sat"], payload["cost"])
        log_probe(spec, grp.gid, payload=payload, hit=hit)
        nonlocal best_blob, best_cost
        if payload["sat"] and payload["alloc"] is not None:
            if best_cost is None or payload["cost"] < best_cost:
                best_blob = payload["alloc"]
                best_cost = payload["cost"]
        for pid2 in obsolete:
            cancel_probe(pid2)
        if budget is not None:
            budget.step(
                conflicts=payload["conflicts"],
                decisions=payload["decisions"],
            )
        sync_checkpoint()

    def apply_bounds(rb, witness, meta) -> None:
        """Fold resolved (audited) bounds into the shared interval.

        Same sequential-equivalence rules as probe answers: an audited
        upper is a SAT answer whose witness the caller holds, a
        certified lower an UNSAT verdict for the region below it.
        In-flight probes the bounds decide are cancelled.  A bound that
        contradicts already-probed facts is dropped with a note (the
        probes win; the search stays sound either way).
        """
        nonlocal best_blob, best_cost, witness_seeded
        from repro.parallel_solve.plan import SearchInconsistency

        bounds_meta["mode"] = meta["mode"]
        bounds_meta["providers"] = meta["providers"]
        if meta.get("notes"):
            bounds_meta.setdefault("notes", []).extend(meta["notes"])
        upper = rb.upper if rb.upper is not None and lb <= rb.upper <= ub \
            else None
        floor = rb.lower if rb.lower is not None and rb.lower > lb else None
        if floor is not None:
            floor = min(floor, ub)
        applied: dict = {}
        obsolete: list[int] = []
        if upper is not None:
            try:
                obsolete += search.tighten_upper(upper)
            except SearchInconsistency as exc:
                bounds_meta.setdefault("notes", []).append(
                    f"audited upper dropped: {exc}"
                )
            else:
                applied["upper"] = upper
                if witness is not None and (
                    best_cost is None or upper < best_cost
                ):
                    from repro.io import allocation_to_dict

                    best_blob = allocation_to_dict(witness)
                    best_cost = upper
                    witness_seeded = True
        if floor is not None:
            try:
                obsolete += search.tighten_lower(floor)
            except SearchInconsistency as exc:
                bounds_meta.setdefault("notes", []).append(
                    f"certified floor dropped: {exc}"
                )
            else:
                applied["lower"] = floor
        if applied:
            bounds_meta["applied"] = {
                **bounds_meta.get("applied", {}), **applied,
            }
            if rb.provenance:
                bounds_meta["provenance"] = dict(rb.provenance)
        if certificate is not None and meta.get("audits"):
            from repro.certify import ProbeCertificate

            for a in meta["audits"]:
                certificate.add(ProbeCertificate(
                    index=len(certificate.probes),
                    kind="bounds",
                    ok=True,
                    detail=f"{a['provider']} {a['side']}: {a['detail']}",
                ))
        for pid2 in obsolete:
            cancel_probe(pid2)
        sync_checkpoint()

    racer = None
    bounds_mode = getattr(request, "bounds_mode", "auto")
    if (
        objective is not None
        and bounds_mode != "off"
        and not (ckpt is not None and ckpt.started)
    ):
        if bounds_mode == "race":
            # Sidecar racer: the fleet starts cold, the bounds arrive
            # mid-flight and tighten the shared interval.
            from repro.bounds.sidecar import BoundsRacer

            racer = BoundsRacer(
                allocator.tasks, allocator.arch, objective, request
            ).start()
        else:
            # "auto": resolve synchronously so the very first dispatch
            # already sees the audited interval (no unconstrained SOLVE
            # when an audited witness exists).
            from repro.bounds.providers import resolve_bounds

            rb, wit, meta = resolve_bounds(
                allocator.tasks, allocator.arch, objective, request
            )
            if meta.get("providers"):
                apply_bounds(rb, wit, meta)

    def dispatch() -> None:
        idle = [g for g in groups.values() if g.idle]
        if not idle:
            return
        for grp, spec in zip(idle, search.probe_points(len(idle))):
            probe_group[spec.probe_id] = grp.gid
            grp.spec = spec
            grp.ack_pid = spec.probe_id
            grp.answered = False
            grp.pending = set()
            for wid2 in grp.workers:
                if workers[wid2].conn is not None:
                    grp.pending.add(wid2)
                    safe_send(workers[wid2], (
                        "probe", spec.probe_id, spec.lo, spec.hi, None,
                    ))

    t0 = time.perf_counter()
    try:
        for w in workers.values():
            if not spawn(w, []):
                quarantined.add(w.wid)
        for grp in groups.values():
            if all(workers[x].conn is None for x in grp.workers):
                grp.dead = True
        while not search.done:
            if (
                request.time_limit is not None
                and time.perf_counter() - t0 > request.time_limit
            ):
                out.interrupted = True
                out.interrupt_reason = (
                    f"time limit ({request.time_limit:g}s) expired"
                )
                break
            if budget is not None and budget.expired():
                out.interrupted = True
                out.interrupt_reason = budget.expired_reason
                break
            if all(g.dead for g in groups.values()):
                out.interrupted = True
                out.interrupt_reason = "all probe workers failed"
                break
            if racer is not None and racer.done:
                got = racer.poll()
                if got is not None:
                    apply_bounds(*got)
                    if search.done:
                        break
                elif racer.error and "sidecar_error" not in bounds_meta:
                    bounds_meta["sidecar_error"] = racer.error
            dispatch()
            if search.done:
                break
            ready = conn_wait(list(conn_map.keys()), timeout=0.2)
            for conn in ready:
                w = conn_map.get(conn)
                if w is None:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    handle_death(w)
                    continue
                kind = msg[0]
                if kind == "ready":
                    continue
                if kind == "error":
                    handle_death(w)
                elif kind == "cancelled":
                    grp = groups[w.gid]
                    if msg[2] == grp.ack_pid:
                        grp.pending.discard(w.wid)
                elif kind == "result":
                    handle_result(w, msg[2], msg[3])
    finally:
        for w in workers.values():
            safe_send(w, ("stop",))
        for w in workers.values():
            if w.proc is not None:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(timeout=1.0)
                    if w.proc.is_alive():
                        w.proc.kill()
                        w.proc.join()
            if w.conn is not None:
                conn_map.pop(w.conn, None)
                try:
                    w.conn.close()
                except OSError:
                    pass
                w.conn = None
            if w.inbox is not None:
                w.inbox.cancel_join_thread()
                w.inbox.close()

    if racer is not None and not racer.done:
        bounds_meta.setdefault("notes", []).append(
            "race: search closed before the bounds sidecar resolved"
        )
    out.feasible = search.feasible is True
    out.optimum = search.right
    out.proven = search.done and not out.interrupted
    out.seconds = time.perf_counter() - t0
    if bounds_meta:
        out.bounds.update(bounds_meta)
    sync_checkpoint()

    alloc = None
    certifier = None
    need_model = best_blob is None
    # A certified run whose optimum rests on a seeded bounds witness
    # (no SAT probe of its own) still owes the certificate a SAT audit
    # of the served model.
    need_audit = (
        certificate is not None
        and witness_seeded
        and not any(p.sat for p in out.probes)
    )
    if out.feasible and out.proven and (need_model or need_audit):
        # Closed without a SAT probe of its own (resumed checkpoint or
        # audited bounds witness): re-certify [R, R] on the (pristine)
        # parent encoding, exactly like bin_search does.
        certifier = _recertify(
            allocator, objective, enc, cost_var, lb, search.right, out,
            certificate is not None,
        )
        alloc = enc.decode()
        if certifier is not None and certifier.result.probes:
            cert = certifier.result.probes[-1]
            cert.index = len(certificate.probes)
            certificate.add(cert)
    elif best_blob is not None:
        from repro.io import allocation_from_dict

        alloc = allocation_from_dict(best_blob)

    if certificate is not None:
        certificate.proof_lines = sum(
            w.proof_lines for w in workers.values()
        )
        if certifier is not None:
            certificate.proof_lines += len(certifier.proof.steps)

    result = allocator._finish(
        enc, out, alloc, enc_secs, request.verify, certificate
    )
    stats = result.solver_stats
    stats["conflicts"] = stats.get("conflicts", 0) + sum(
        w.conflicts for w in workers.values()
    )
    stats["decisions"] = stats.get("decisions", 0) + sum(
        w.decisions for w in workers.values()
    )
    stats["imported_clauses"] = stats.get("imported_clauses", 0) + sum(
        w.imported for w in workers.values()
    )
    stats["rejected_imports"] = stats.get("rejected_imports", 0) + sum(
        w.rejected for w in workers.values()
    )
    stats["parallel"] = {
        "groups": groups_n,
        "racers": racers_n,
        "workers": len(workers),
        "respawns": respawns,
        "spawn_failures": spawn_failures,
        "quarantined_workers": sorted(quarantined),
        "speculative_hits": out.speculative_hits,
        "speculative_misses": out.speculative_misses,
        "cancelled_probes": out.cancelled_probes,
    }
    return result


def _recertify(allocator, objective, enc, cost_var, lb, optimum, out,
               certify):
    """Run the final [R, R] probe in-process on the parent encoding."""
    from repro.arith.ast import And

    certifier = None
    if certify:
        from repro.certify import ProbeCertifier

        certifier = ProbeCertifier(
            allocator.tasks, allocator.arch, enc, objective
        )
    guard = enc.solver.new_guard()
    parts = []
    if optimum > lb:
        parts.append(cost_var >= optimum)
    parts.append(cost_var <= optimum)
    enc.solver.require(
        And(*parts) if len(parts) > 1 else parts[0], guard=guard
    )
    t0 = time.perf_counter()
    c0 = enc.solver.stats.conflicts
    d0 = enc.solver.stats.decisions
    sat = enc.solver.solve(assumptions=[guard])
    if not sat:
        raise ValueError(
            "recorded state is inconsistent with the constraints: "
            f"optimum {optimum} (from a checkpoint or an audited bounds "
            "witness) is not satisfiable"
        )
    out.probes.append(ProbeLog(
        lo=optimum, hi=optimum, sat=True, cost=enc.solver.value(cost_var),
        seconds=time.perf_counter() - t0,
        conflicts=enc.solver.stats.conflicts - c0,
        decisions=enc.solver.stats.decisions - d0,
    ))
    if certifier is not None:
        certifier.on_probe(out.probes[-1], guard)
    return certifier
