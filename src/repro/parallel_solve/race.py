"""Search-only CDCL diversification for clause-sharing solver races.

Racers within one probe group must agree on the *logic* -- identical
encodings, identical variable numbering, identical guard order -- or
exchanged clauses would be meaningless.  Diversity therefore lives
entirely in the *search* configuration, applied after the encoding is
built: restart cadence (``luby_base``), initial phase, and a random
perturbation of the VSIDS activities.  None of these affect soundness
or the proof-logging discipline; they only make the racers explore the
search space in different orders so the first-to-answer win is worth
having.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sat.literals import VAL_FALSE, VAL_TRUE

__all__ = ["RaceConfig", "default_race_configs", "apply_race_config"]


@dataclass(frozen=True)
class RaceConfig:
    """One racer's search personality (picklable)."""

    seed: int = 0
    #: Luby restart unit; None keeps the engine default.
    luby_base: int | None = None
    #: Initial branching phase: ``saved`` (engine default), ``positive``,
    #: ``negative`` or ``random`` (seeded).
    phase: str = "saved"
    #: Magnitude of the random VSIDS activity perturbation (0 = off).
    jitter: float = 0.0


#: The portfolio the engine cycles through; racer 0 is always the
#: pristine configuration so a single-racer group behaves exactly like
#: the sequential solver.
_PORTFOLIO = (
    RaceConfig(seed=0),
    RaceConfig(seed=1, luby_base=64, phase="negative", jitter=0.5),
    RaceConfig(seed=2, luby_base=256, phase="random", jitter=0.25),
    RaceConfig(seed=3, luby_base=32, phase="positive", jitter=1.0),
)


def default_race_configs(n: int) -> list[RaceConfig]:
    """``n`` distinct race configurations (cycled with fresh seeds)."""
    out = []
    for i in range(n):
        base = _PORTFOLIO[i % len(_PORTFOLIO)]
        out.append(RaceConfig(
            seed=i,
            luby_base=base.luby_base,
            phase=base.phase,
            jitter=base.jitter,
        ))
    return out


def apply_race_config(sat, cfg: RaceConfig) -> None:
    """Perturb a :class:`repro.sat.solver.Solver`'s search heuristics.

    Must be called after the encoding is complete and before the first
    probe; touches nothing that alters the clause database or the
    variable numbering.
    """
    if cfg.luby_base is not None:
        sat.luby_base = cfg.luby_base
    rng = random.Random(cfg.seed)
    # set_phases writes in place: the phase array is a typed buffer
    # shared with the propagation backends and must not be rebound.
    if cfg.phase == "positive":
        sat.set_phases(VAL_TRUE)
    elif cfg.phase == "negative":
        sat.set_phases(VAL_FALSE)
    elif cfg.phase == "random":
        sat.set_phases(
            VAL_TRUE if rng.random() < 0.5 else VAL_FALSE
            for _ in range(sat.nvars)
        )
    if cfg.jitter > 0.0:
        for var in range(sat.nvars):
            sat.activity[var] += rng.random() * cfg.jitter * sat.var_inc
        # Restore the heap invariant after the bulk perturbation.
        for pos in range(sat.heap_n - 1, -1, -1):
            sat._heap_sift_down(pos)
