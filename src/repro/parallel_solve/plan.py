"""Pure state machine of the speculative parallel binary search.

The sequential BIN_SEARCH (paper section 5.2) probes one midpoint of
``[L, R]`` at a time.  The speculative search keeps K probes in flight
at the K-quantiles of the open interval; every *answer* updates the
interval by exactly the sequential rules

- ``UNSAT [lo, hi]``  (with ``lo <= L``)  ->  ``L := hi + 1``,
- ``SAT`` with witness cost ``c``          ->  ``R := min(R, c)``,

so each update is individually sound regardless of arrival order, and
the closed interval -- and with it the certified optimum -- is exactly
the sequential one.  Probes whose interval the concurrent answers have
already decided (``hi < L``: refuted; ``hi >= R``: witnessed) are
*obsolete* and get cancelled.  Answers that tightened the interval are
*hits*; answers that arrived too late are *misses* -- both are recorded
for the probe log.

With K = 1 the quantile rule degenerates to the sequential midpoint, so
the speculative engine at one group IS the classical binary search.

This module is deliberately process-free (plain data in, plain data
out) so the search semantics are unit-testable without multiprocessing;
:mod:`repro.parallel_solve.engine` owns the worker plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProbeSpec", "SpeculativeSearch", "SearchInconsistency"]


class SearchInconsistency(RuntimeError):
    """Two probe answers contradict each other (a solver-level bug):
    e.g. an UNSAT verdict for an interval containing a witnessed cost."""


@dataclass(frozen=True)
class ProbeSpec:
    """One dispatched probe: constrain ``lo <= cost <= hi`` and solve.

    ``hi is None`` means unconstrained above (the feasibility probe,
    the paper's initial ``SOLVE(phi)``).  ``lo`` is the proven lower
    bound at dispatch time; a later, larger ``L`` keeps the probe sound
    (its interval is a superset of the remaining candidates).
    """

    probe_id: int
    lo: int
    hi: int | None


class SpeculativeSearch:
    """Shared interval + probe bookkeeping for the parallel BIN_SEARCH."""

    def __init__(self, lower: int, upper: int):
        self.lower = lower
        self.upper = upper
        #: All costs < left are refuted.
        self.left = lower
        #: Best witnessed cost (None until the first SAT answer).
        self.right: int | None = None
        #: None until decided; True after any SAT, False after an
        #: unconstrained UNSAT.
        self.feasible: bool | None = None
        self.hits = 0
        self.misses = 0
        self._next_id = 0
        self.in_flight: dict[int, ProbeSpec] = {}

    # -- interval --------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when the search interval is closed."""
        if self.feasible is False:
            return True
        return (
            self.feasible is True
            and self.right is not None
            and self.left >= self.right
        )

    def resume(self, left: int, right: int | None,
               feasible: bool | None) -> None:
        """Seed interval state from a checkpoint."""
        self.feasible = feasible
        if left is not None:
            self.left = left
        self.right = right

    # -- dispatch --------------------------------------------------------

    def probe_points(self, k: int) -> list[ProbeSpec]:
        """Up to ``k`` fresh probes at distinct, undecided cost values.

        While feasibility is unknown, the first probe is the
        unconstrained ``SOLVE(phi)`` (the only probe that can certify
        infeasibility) and the rest speculate inside ``[L, upper]``.
        Afterwards probes sit at the k-quantiles of ``[L, R - 1]`` --
        for ``k = 1`` exactly the sequential midpoint ``(L + R) // 2``.
        May return fewer than ``k`` specs when the interval has fewer
        distinct undecided values.
        """
        if self.done or k <= 0:
            return []
        taken = {p.hi for p in self.in_flight.values()}
        out: list[ProbeSpec] = []
        if self.feasible is None:
            if None not in taken:
                out.append(self._dispatch(None))
                taken.add(None)
            right_v = self.upper + 1
        else:
            assert self.right is not None
            right_v = self.right
        span = right_v - self.left
        n = k - len(out)
        if span <= 0 or n <= 0:
            return out
        for j in range(1, n + 1):
            hi = self.left + (span * j) // (n + 1)
            if hi >= right_v or hi in taken:
                continue
            taken.add(hi)
            out.append(self._dispatch(hi))
        return out

    def _dispatch(self, hi: int | None) -> ProbeSpec:
        spec = ProbeSpec(self._next_id, self.left, hi)
        self._next_id += 1
        self.in_flight[spec.probe_id] = spec
        return spec

    # -- answers ---------------------------------------------------------

    def on_result(
        self, probe_id: int, sat: bool, cost: int | None
    ) -> tuple[bool, list[int]]:
        """Apply one probe answer.

        Returns ``(hit, obsolete_ids)``: whether the answer tightened
        the interval, and the in-flight probes that are now obsolete
        (the caller cancels them).  Raises :class:`SearchInconsistency`
        when the answer contradicts established facts.
        """
        spec = self.in_flight.pop(probe_id, None)
        if spec is None:
            raise KeyError(f"unknown probe id {probe_id}")
        hit = False
        if sat:
            if cost is None:
                raise SearchInconsistency("SAT answer without a cost")
            if cost < self.left:
                raise SearchInconsistency(
                    f"witness cost {cost} below the refuted bound "
                    f"{self.left}"
                )
            if self.feasible is None:
                self.feasible = True
                hit = True
            if self.right is None or cost < self.right:
                self.right = cost
                hit = True
        elif spec.hi is None:
            # No solution with cost >= spec.lo; everything below the
            # current left is already refuted, so: infeasible.
            if self.feasible is True:
                raise SearchInconsistency(
                    "unconstrained probe answered UNSAT after a witness"
                )
            self.feasible = False
            hit = True
        else:
            if self.right is not None and spec.hi >= self.right:
                raise SearchInconsistency(
                    f"UNSAT verdict for [{spec.lo}, {spec.hi}] although "
                    f"cost {self.right} was witnessed"
                )
            if spec.hi + 1 > self.left:
                self.left = spec.hi + 1
                hit = True
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        obsolete = [
            pid for pid, s in self.in_flight.items() if self._obsolete(s)
        ]
        return hit, obsolete

    # -- bounds ----------------------------------------------------------

    def tighten_upper(self, cost: int) -> list[int]:
        """Apply an *audited* achievable cost from a bounds provider.

        Semantically identical to a SAT answer at ``cost`` (the caller
        holds the audited witness), so the same sequential rules apply.
        Returns the now-obsolete in-flight probe ids.
        """
        if self.feasible is False:
            raise SearchInconsistency(
                f"audited witness at cost {cost} after certified "
                "infeasibility"
            )
        if cost < self.left:
            raise SearchInconsistency(
                f"audited witness cost {cost} below the refuted bound "
                f"{self.left}"
            )
        if self.feasible is None:
            self.feasible = True
        if self.right is None or cost < self.right:
            self.right = cost
        return [
            pid for pid, s in self.in_flight.items() if self._obsolete(s)
        ]

    def tighten_lower(self, bound: int) -> list[int]:
        """Apply an *audited* certified floor from a bounds provider.

        Semantically identical to an UNSAT answer for
        ``[left, bound - 1]`` (the certificate refuted that region), so
        the same sequential rules apply.  Returns the now-obsolete
        in-flight probe ids.
        """
        if self.right is not None and bound > self.right:
            raise SearchInconsistency(
                f"certified floor {bound} above the witnessed cost "
                f"{self.right}"
            )
        if bound > self.left:
            self.left = bound
        return [
            pid for pid, s in self.in_flight.items() if self._obsolete(s)
        ]

    def on_cancelled(self, probe_id: int) -> None:
        """Forget a probe the engine cancelled (neither hit nor miss)."""
        self.in_flight.pop(probe_id, None)

    def _obsolete(self, spec: ProbeSpec) -> bool:
        if self.feasible is False:
            return True
        if spec.hi is None:
            # The feasibility probe's only job is done once any SAT
            # answer arrived.
            return self.feasible is True
        if spec.hi < self.left:
            return True  # its whole interval is already refuted
        if self.right is not None and spec.hi >= self.right:
            return True  # a witness at or below hi already exists
        return False
