"""Probe worker processes for the speculative parallel binary search.

Each worker owns one complete :class:`~repro.core.encoder.
ProblemEncoding` (inherited copy-on-write under ``fork``, rebuilt from
the system blob under ``spawn``) and serves probe requests over a duplex
pipe.  A probe is solved in bounded *slices* (a fresh cooperative
:class:`~repro.robust.Budget` per slice): between slices the worker
polls its pipe for cancellations, imports peer lemmas and exports its
own short learnt clauses -- so an obsolete probe is abandoned within one
slice and clause exchange happens only at decision level 0, where
:meth:`~repro.sat.solver.Solver.import_clause` can verify and
proof-log every import.

Guard/variable alignment (clause-sharing precondition): all racers of a
group build the identical encoding and process the identical probe
sequence, so their probe guards and bound-encoding variables coincide.
A respawned worker replays the group's probe *history* (bounds only, no
solving) before serving, restoring that alignment.

Protocol (parent -> worker)::

    ("probe", probe_id, lo, hi, wall_limit)
    ("cancel", probe_id)
    ("stop",)

(worker -> parent)::

    ("ready", worker_id, encode_seconds)
    ("result", worker_id, probe_id, payload_dict)
    ("cancelled", worker_id, probe_id)
    ("error", worker_id, traceback_text)
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field

from repro.chaos import chaos_lits, chaos_point
from repro.parallel_solve.race import RaceConfig, apply_race_config
from repro.robust.budget import Budget, BudgetExpired

__all__ = ["WorkerSpec", "probe_worker_main"]

#: Bounded retry attempts for one clause-sharing queue operation; the
#: backoff doubles from _IPC_BACKOFF seconds per attempt.
_IPC_ATTEMPTS = 3
_IPC_BACKOFF = 0.005


@dataclass
class WorkerSpec:
    """Picklable description of one probe worker."""

    worker_id: int
    group: int
    racer: int
    #: ``system_to_dict`` blob; unused when the encoding is fork-shared.
    system_blob: dict | None = None
    config: object | None = None
    objective: object | None = None
    certify: bool = False
    share: bool = False
    share_max_len: int = 8
    #: Conflicts per solve slice (cancellation latency knob).
    slice_conflicts: int = 512
    #: Wall seconds per solve slice.
    slice_wall: float = 0.25
    #: Probes already dispatched to this group, replayed (bounds only)
    #: by a respawned worker to restore guard/variable alignment.
    history: list = field(default_factory=list)
    #: Fault injection for tests: ``os._exit`` when starting the n-th
    #: probe (1-based); None = healthy.
    die_at: int | None = None
    race_config: RaceConfig = field(default_factory=RaceConfig)
    #: :class:`repro.chaos.ChaosSchedule` installed in the worker process
    #: (cross-process execution counts live in its state_dir); None = off.
    chaos: object | None = None


class _Stop(Exception):
    """Parent asked the worker to shut down."""


def _build_encoding(spec: WorkerSpec):
    """Rebuild tasks/arch/encoding from the blob (spawn start method)."""
    from repro.core.allocator import Allocator
    from repro.io import system_from_dict

    tasks, arch = system_from_dict(spec.system_blob)
    alloc = Allocator(tasks, arch, spec.config)
    enc, cost_var, lo, hi, _secs = alloc._encode(spec.objective)
    return tasks, arch, enc, cost_var, lo


def _add_bounds(enc, cost_var, lower, lo, hi):
    """Add one probe's bound constraints under a fresh guard."""
    from repro.arith import And

    guard = enc.solver.new_guard()
    parts = []
    if lo is not None and lo > lower:
        parts.append(cost_var >= lo)
    if hi is not None:
        parts.append(cost_var <= hi)
    if parts:
        enc.solver.require(
            And(*parts) if len(parts) > 1 else parts[0], guard=guard
        )
    return guard


def probe_worker_main(conn, spec: WorkerSpec, inbox, peers, enc_pack):
    """Worker-process entry point (top-level, hence picklable).

    ``enc_pack`` is ``(tasks, arch, enc, cost_var, lower)`` when the
    parent forked us with its encoding (copy-on-write), else None and
    the worker rebuilds everything from ``spec.system_blob``.
    """
    if spec.chaos is not None:
        from repro import chaos as chaos_mod

        chaos_mod.install(spec.chaos)
    try:
        t0 = time.perf_counter()
        if enc_pack is not None:
            tasks, arch, enc, cost_var, lower = enc_pack
        else:
            tasks, arch, enc, cost_var, lower = _build_encoding(spec)
        sat = enc.solver.sat
        apply_race_config(sat, spec.race_config)
        certifier = None
        if spec.certify:
            from repro.certify import ProbeCertifier

            certifier = ProbeCertifier(tasks, arch, enc, spec.objective)
        exported: list[tuple] = []
        seen_exports: set[tuple] = set()
        if spec.share:
            max_len = spec.share_max_len

            def learn_hook(lits, _exp=exported, _seen=seen_exports):
                if len(lits) <= max_len:
                    key = tuple(sorted(lits))
                    if key not in _seen:
                        _seen.add(key)
                        _exp.append(key)

            sat.learn_hook = learn_hook
        # Respawn: replay the group's probe history (bounds only) so the
        # guard / bound-variable numbering matches the surviving racers.
        for lo, hi in spec.history:
            _add_bounds(enc, cost_var, lower, lo, hi)
        conn.send(("ready", spec.worker_id, time.perf_counter() - t0))
        probes_served = 0
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            if msg[0] == "cancel":
                continue  # stale cancel for an already-finished probe
            _, probe_id, lo, hi, wall = msg
            probes_served += 1
            if spec.die_at is not None and probes_served >= spec.die_at:
                os._exit(87)  # FAULT_EXIT_CODE: injected crash
            _serve_probe(
                conn, spec, enc, cost_var, lower, certifier,
                inbox, peers, exported,
                probe_id, lo, hi, wall,
            )
    except (_Stop, EOFError, KeyboardInterrupt):
        pass
    except Exception:  # pragma: no cover - reported to the supervisor
        try:
            conn.send(("error", spec.worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _drain_control(conn, probe_id) -> bool:
    """Handle queued control messages; True when this probe is cancelled."""
    cancelled = False
    while conn.poll():
        msg = conn.recv()
        if msg[0] == "stop":
            raise _Stop()
        if msg[0] == "cancel" and msg[1] == probe_id:
            cancelled = True
        # cancels for other (older) probes are stale: ignore.
    return cancelled


def _ipc_put(q, item) -> bool:
    """One queue export with bounded retry-with-backoff.

    A full bounded queue is *normal* (drop, sharing is best-effort); a
    transient OSError (wedged pipe, injected ``worker.ipc.put``) gets
    :data:`_IPC_ATTEMPTS` tries before the lemma is dropped -- clause
    sharing must never take the worker down.
    """
    for attempt in range(_IPC_ATTEMPTS):
        try:
            chaos_point("worker.ipc.put")
            q.put_nowait(item)
            return True
        except queue_mod.Full:
            return False
        except (OSError, ValueError):
            time.sleep(_IPC_BACKOFF * (2 ** attempt))
    return False


def _ipc_get(q) -> tuple[bool, object]:
    """One queue import with bounded retry-with-backoff; ``(False, None)``
    when the queue is empty or persistently failing."""
    for attempt in range(_IPC_ATTEMPTS):
        try:
            chaos_point("worker.ipc.get")
            return True, q.get_nowait()
        except queue_mod.Empty:
            return False, None
        except (OSError, ValueError):
            time.sleep(_IPC_BACKOFF * (2 ** attempt))
    return False, None


def _exchange(sat, spec, inbox, peers, exported) -> tuple[int, int]:
    """Flush exports to the peers, import pending peer lemmas."""
    sent = 0
    if spec.share and exported:
        for clause in exported:
            for q in peers:
                if _ipc_put(q, clause):
                    sent += 1
        del exported[:]
    got = 0
    if spec.share and inbox is not None:
        while True:
            ok, clause = _ipc_get(inbox)
            if not ok:
                break
            # Named fault site: a lemma damaged in transit (flipped or
            # dropped literal) must be *rejected by verification*, not
            # trusted -- import_clause RUP-checks every import, so a
            # damaged-but-underivable clause lands in rejected_imports.
            clause = chaos_lits("race.import", tuple(clause))
            if clause is None:
                continue  # lost in transit
            if sat.import_clause(list(clause)):
                got += 1
    return sent, got


def _serve_probe(conn, spec, enc, cost_var, lower, certifier,
                 inbox, peers, exported, probe_id, lo, hi, wall) -> None:
    sat = enc.solver.sat
    guard = _add_bounds(enc, cost_var, lower, lo, hi)
    deadline = time.monotonic() + wall if wall is not None else None
    t0 = time.perf_counter()
    c0 = enc.solver.stats.conflicts
    d0 = enc.solver.stats.decisions
    status = None
    answer = False
    del exported[:]  # bounds may have triggered learning; don't export those
    while status is None:
        # Named fault site, once per solve slice: a "crash" here dies
        # mid-probe (respawn path), an "io-error" surfaces through the
        # worker's error report, a "hang" exercises cancellation latency.
        chaos_point("solver.slice")
        if _drain_control(conn, probe_id):
            conn.send(("cancelled", spec.worker_id, probe_id))
            return
        if deadline is not None and time.monotonic() > deadline:
            status = "interrupted"
            break
        _exchange(sat, spec, inbox, peers, exported)
        c_before = enc.solver.stats.conflicts
        budget = Budget(
            wall_seconds=spec.slice_wall,
            max_conflicts=spec.slice_conflicts,
        )
        try:
            answer = enc.solver.solve(assumptions=[guard], budget=budget)
        except BudgetExpired:
            # Every slice restarts from level 0, re-propagating the
            # assumptions; on large formulas a fixed short wall can
            # expire inside that re-propagation and make no search
            # progress at all.  Grow the slice until useful work
            # dominates (trading cancellation latency for liveness);
            # the growth persists across this worker's later probes.
            if enc.solver.stats.conflicts - c_before < (
                spec.slice_conflicts // 8
            ):
                spec.slice_wall = min(spec.slice_wall * 2.0, 8.0)
            continue  # slice over: poll control, exchange, go again
        status = "sat" if answer else "unsat"
    _exchange(sat, spec, inbox, peers, exported)
    seconds = time.perf_counter() - t0
    cost = enc.solver.value(cost_var) if status == "sat" else None
    payload = {
        "status": status,
        "sat": status == "sat",
        "cost": cost,
        "alloc": None,
        "seconds": seconds,
        "conflicts": enc.solver.stats.conflicts - c0,
        "decisions": enc.solver.stats.decisions - d0,
        "imported": enc.solver.stats.snapshot()["imported_clauses"],
        "rejected": enc.solver.stats.snapshot()["rejected_imports"],
        "certificate": None,
        "proof_lines": 0,
    }
    if status == "sat":
        from repro.io import allocation_to_dict

        payload["alloc"] = allocation_to_dict(enc.decode())
    if certifier is not None:
        from repro.core.optimize import ProbeLog

        probe = ProbeLog(
            lo=lo if lo is not None else lower,
            hi=hi if hi is not None else 0,
            sat=status == "sat",
            cost=cost,
            seconds=seconds,
            conflicts=payload["conflicts"],
            decisions=payload["decisions"],
            interrupted=status == "interrupted",
        )
        certifier.on_probe(probe, guard)
        payload["certificate"] = certifier.result.probes[-1]
        payload["proof_lines"] = len(certifier.proof.steps)
    conn.send(("result", spec.worker_id, probe_id, payload))
