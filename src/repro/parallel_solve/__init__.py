"""Parallel solve engine: speculative probes + clause-sharing races.

See ``docs/PARALLEL.md``.  The public entry point is
:func:`speculative_minimize`; most callers reach it indirectly through
:meth:`repro.core.Allocator.minimize` with a
:class:`repro.core.SolveRequest` whose ``processes``/``speculate``/
``race`` fields make :attr:`SolveRequest.parallel` true.
"""

from repro.parallel_solve.engine import speculative_minimize
from repro.parallel_solve.plan import (
    ProbeSpec,
    SearchInconsistency,
    SpeculativeSearch,
)
from repro.parallel_solve.race import (
    RaceConfig,
    apply_race_config,
    default_race_configs,
)
from repro.parallel_solve.worker import WorkerSpec, probe_worker_main

__all__ = [
    "speculative_minimize",
    "SpeculativeSearch",
    "ProbeSpec",
    "SearchInconsistency",
    "RaceConfig",
    "default_race_configs",
    "apply_race_config",
    "WorkerSpec",
    "probe_worker_main",
]
