"""Provider resolution: audit every proposal, keep the tightest bounds.

:func:`resolve_bounds` is the single gate between bounds providers and
the binary search.  It runs every :class:`~repro.core.api.
BoundsProvider` on :attr:`SolveRequest.bounds` (plus any the engine
injects) and audits each proposal:

- an ``upper`` backed by a ``witness`` is re-checked by the independent
  analysis; the *recomputed* cost (never the claim) becomes a trusted
  upper bound and the decoded witness the model substitute;
- a ``lower`` backed by a ``certificate`` is re-audited from the model
  by :func:`repro.certify.bounds.audit_lower_certificate`; only a
  passing audit yields a certified floor;
- everything else -- bare numbers, failed audits, non-exact reports --
  degrades to a probe-order hint that can never shrink the certified
  interval.

Tightest audited bound wins (max of lowers, min of uppers).  If the
audited sides ever cross (an audit/analysis bug, not a valid state) the
floor is demoted to a hint: the search then stays sound and merely
slower.
"""

from __future__ import annotations

import time

from repro.certify.bounds import audit_lower_certificate
from repro.core.api import BoundsProvider, BoundsReport
from repro.core.optimize import ResolvedBounds

__all__ = ["HintBoundsProvider", "resolve_bounds"]


class HintBoundsProvider(BoundsProvider):
    """A static proposal: a warm-cache entry, an externally computed
    bound, or a test fixture.  Carries whatever evidence the caller has
    (witness payload, certificate); the resolver audits it like any
    other proposal."""

    def __init__(
        self,
        lower: int | None = None,
        upper: int | None = None,
        witness: dict | None = None,
        certificate=None,
        exact: bool = True,
        name: str = "hint",
    ):
        self.name = name
        self.lower = lower
        self.upper = upper
        self.witness = witness
        self.certificate = certificate
        self.exact = exact

    def propose(self, tasks, arch, request) -> BoundsReport | None:
        if self.lower is None and self.upper is None and self.witness is None:
            return None
        return BoundsReport(
            provider=self.name,
            lower=self.lower,
            upper=self.upper,
            witness=self.witness,
            certificate=self.certificate,
            exact=self.exact,
        )


def _audit_witness_payload(tasks, arch, objective, payload):
    """``(allocation, independently recomputed cost)`` or None when the
    payload is malformed, unschedulable, or unscorable."""
    from repro.analysis.feasibility import check_allocation
    from repro.certify.audit import independent_cost
    from repro.io.json_codec import allocation_from_dict

    try:
        alloc = allocation_from_dict(payload)
    except (KeyError, ValueError, TypeError):
        return None
    if check_allocation(tasks, arch, alloc).problems:
        return None
    try:
        cost, _exact = independent_cost(tasks, arch, alloc, objective)
    except (KeyError, ValueError, TypeError):
        return None
    return alloc, int(cost)


def resolve_bounds(tasks, arch, objective, request, extra=()):
    """Run and audit all bounds providers for one solve.

    Returns ``(resolved, witness_alloc, meta)``: the
    :class:`~repro.core.optimize.ResolvedBounds` to hand to
    ``bin_search``, the decoded allocation achieving ``resolved.upper``
    (or None), and a JSON-ready provenance dict (per-provider verdicts
    plus the audit records of the winning bounds -- the certifier turns
    those into ``kind="bounds"`` probe certificates).
    """
    rb = ResolvedBounds()
    meta: dict = {"mode": "auto", "providers": [], "audits": []}
    witness_alloc = None
    if request is None:
        return rb, None, meta
    mode = getattr(request, "bounds_mode", "auto")
    meta["mode"] = mode
    if mode == "off" or objective is None:
        return rb, None, meta

    providers = list(extra) + list(getattr(request, "bounds", ()) or ())

    # Providers read the objective off the request.
    req = request
    if getattr(request, "objective", None) is not objective:
        req = request.merged(objective=objective)

    for prov in providers:
        name = getattr(prov, "name", type(prov).__name__)
        entry: dict = {"provider": name}
        meta["providers"].append(entry)
        t0 = time.perf_counter()
        try:
            rep = prov.propose(tasks, arch, req)
        except Exception as exc:  # a provider crash is "no proposal"
            entry["error"] = f"{type(exc).__name__}: {exc}"
            entry["seconds"] = round(time.perf_counter() - t0, 6)
            continue
        entry["seconds"] = round(time.perf_counter() - t0, 6)
        if rep is None:
            continue
        if rep.seconds:
            entry["seconds"] = round(rep.seconds, 6)
        entry["proposal"] = {
            "lower": rep.lower,
            "upper": rep.upper,
            "witness": rep.witness is not None,
            "certificate": rep.certificate is not None,
            "exact": rep.exact,
        }

        # Upper side: only a re-audited witness is trusted, and then at
        # its *recomputed* cost.
        if rep.witness is not None:
            audited = _audit_witness_payload(
                tasks, arch, objective, rep.witness
            )
            if audited is not None:
                alloc, cost = audited
                entry["upper_audit"] = "ok"
                if rb.upper is None or cost < rb.upper:
                    rb.upper = cost
                    rb.provenance["upper"] = name
                    witness_alloc = alloc
                    meta["audits"].append({
                        "provider": name,
                        "side": "upper",
                        "detail": (
                            "witness re-audited feasible, independent "
                            f"cost {cost}"
                        ),
                    })
            else:
                entry["upper_audit"] = "failed"
                if rep.upper is not None and (
                    rb.upper_hint is None or rep.upper < rb.upper_hint
                ):
                    rb.upper_hint = rep.upper
                    rb.provenance["upper_hint"] = name
        elif rep.upper is not None:
            if rb.upper_hint is None or rep.upper < rb.upper_hint:
                rb.upper_hint = rep.upper
                rb.provenance["upper_hint"] = name

        # Lower side: only a certificate that survives the independent
        # re-audit is trusted.  A non-exact report without certificate
        # (sum_resp witnesses above all) must stay a hint -- promoting
        # it would let an upper-bound-only audit skip UNSAT probes.
        if rep.lower is not None:
            trusted = False
            if rep.certificate is not None:
                audit = audit_lower_certificate(
                    tasks, arch, objective, rep.certificate
                )
                cert_bound = getattr(rep.certificate, "bound", None)
                if (
                    audit.ok
                    and isinstance(cert_bound, int)
                    and rep.lower <= cert_bound
                ):
                    trusted = True
                    entry["lower_audit"] = "ok"
                    if rb.lower is None or rep.lower > rb.lower:
                        rb.lower = rep.lower
                        rb.provenance["lower"] = name
                        meta["audits"].append({
                            "provider": name,
                            "side": "lower",
                            "detail": (
                                f"{rep.certificate.kind} certificate "
                                f"re-audited sound at {cert_bound}"
                            ),
                        })
                else:
                    entry["lower_audit"] = "failed"
                    entry["lower_audit_problems"] = list(audit.problems)
            if not trusted:
                if rb.lower_hint is None or rep.lower > rb.lower_hint:
                    rb.lower_hint = rep.lower
                    rb.provenance["lower_hint"] = name

    if rb.lower is not None and rb.upper is not None and rb.lower > rb.upper:
        # Both sides were audited, so a crossing means an audit or
        # analysis bug.  Fail safe: drop the floor to a hint -- the
        # search is then merely slower, never unsound.
        meta.setdefault("notes", []).append(
            f"certified floor {rb.lower} exceeds audited upper "
            f"{rb.upper}; floor demoted to a hint"
        )
        rb.lower, rb.provenance["lower_demoted"] = (
            None,
            rb.provenance.pop("lower", "?"),
        )
    rb.model_loaded = witness_alloc is not None
    return rb, witness_alloc, meta
