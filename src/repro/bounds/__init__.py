"""Certified dual-bounds sidecar for the binary search.

Two halves, both audited before they may touch the certified interval:

- **Lower bounds** (:mod:`repro.bounds.relaxation`): greedy-dual /
  LP-style relaxations whose :class:`repro.certify.bounds.
  BoundCertificate` an independent auditor re-derives from the model.
- **Upper bounds**: repaired heuristic allocations whose witness the
  independent analysis re-checks; the recomputed cost -- never the
  claim -- becomes the bound.

Everything reaches :func:`repro.core.optimize.bin_search` through the
:class:`repro.core.api.BoundsProvider` protocol and the single resolver
:func:`repro.bounds.providers.resolve_bounds`; see ``docs/BOUNDS.md``.
"""

from repro.bounds.providers import HintBoundsProvider, resolve_bounds
from repro.bounds.relaxation import (
    RelaxationBoundsProvider,
    dual_floor,
    repaired_upper,
)
from repro.bounds.sidecar import BoundsRacer

__all__ = [
    "BoundsRacer",
    "HintBoundsProvider",
    "RelaxationBoundsProvider",
    "dual_floor",
    "repaired_upper",
    "resolve_bounds",
]
