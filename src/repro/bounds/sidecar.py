"""The bounds sidecar racer (``bounds_mode="race"``).

Runs :func:`repro.bounds.providers.resolve_bounds` on a daemon thread so
the parallel engine can start probing immediately; once the audited
bounds arrive they tighten the shared search interval mid-flight and
obsolete in-flight probes are cancelled.  A sidecar crash never fails
the solve -- the race degrades to a cold search.
"""

from __future__ import annotations

import threading
import time

__all__ = ["BoundsRacer"]


class BoundsRacer:
    """One-shot background bounds resolution.

    ``start()`` launches the thread; the engine calls :meth:`poll` from
    its event loop and receives the ``(ResolvedBounds, witness_alloc,
    meta)`` triple exactly once, the first time it polls after the
    resolver finished.
    """

    def __init__(self, tasks, arch, objective, request, extra=()):
        from repro.bounds.providers import resolve_bounds

        self._resolve = resolve_bounds
        self._args = (tasks, arch, objective, request, extra)
        self.result = None
        self.error: str | None = None
        self.seconds = 0.0
        self._done = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="bounds-racer"
        )

    def start(self) -> "BoundsRacer":
        self._thread.start()
        return self

    def _run(self) -> None:
        t0 = time.perf_counter()
        try:
            self.result = self._resolve(*self._args)
        except Exception as exc:  # degrade to a cold search
            self.error = f"{type(exc).__name__}: {exc}"
        finally:
            self.seconds = time.perf_counter() - t0
            self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def poll(self):
        """The resolved triple exactly once; None while running, after
        the hand-off, or on a crashed resolver."""
        if not self._done.is_set() or self.result is None:
            return None
        out, self.result = self.result, None
        return out
