"""Greedy-dual relaxations producing certified interval bounds.

Lower bounds drop the integrality of the placement and keep only the
budgets every feasible allocation must pay: each task's own WCET inside
any response time (``wcet_floor``), every ring member's minimal token
slot (``slot_floor``), bus traffic that no placement can co-locate away
(``forced_can_floor``), and the fractional spread of total utilization
demand over all machines (``util_packing`` -- the LP relaxation of the
assignment).  Every bound ships a :class:`repro.certify.bounds.
BoundCertificate` carrying its per-item dual weights; the auditor
(:func:`repro.certify.bounds.audit_lower_certificate`) recomputes the
arithmetic from the model.  This module and the auditor deliberately
share no code, so a bug here cannot pass its own audit.

Upper bounds come from repaired heuristic allocations
(:mod:`repro.baselines`): greedy first-fit, tightened or repaired by a
short simulated-annealing walk, re-scored by the independent analysis.
The witness (not the heuristic's claim) is what the resolver later
audits.
"""

from __future__ import annotations

import time

from repro.certify.bounds import BoundCertificate, bound_objective_key
from repro.core.api import BoundsProvider, BoundsReport

__all__ = ["RelaxationBoundsProvider", "dual_floor", "repaired_upper"]

#: Per-mille scale of the CAN-utilization objective (kept local: the
#: relaxation must not share constants with the auditor either).
_CAN_SCALE = 1000


def _ceil(a: int, b: int) -> int:
    return (a + b - 1) // b


def dual_floor(tasks, arch, objective) -> BoundCertificate | None:
    """A certified lower bound on the optimum, or None when no
    relaxation applies to this objective / architecture."""
    from repro.model.architecture import MediumKind

    try:
        key = bound_objective_key(objective)
    except ValueError:
        return None
    kind, _, arg = key.partition(":")

    if kind == "sum_resp":
        # Any response time contains the task's own WCET, whatever the
        # placement: sum the per-task minima over candidate ECUs.
        terms: dict[str, int] = {}
        for t in tasks:
            cands = t.candidate_ecus(arch)
            if cands:
                terms[t.name] = min(t.wcet[p] for p in cands)
        if not terms:
            return None
        return BoundCertificate(
            "wcet_floor", key, sum(terms.values()), terms
        )

    if kind in ("trt", "sum_trt"):
        # Every ring member owns one token slot of at least min_slot.
        terms = {}
        for kname, med in arch.media.items():
            if med.kind is not MediumKind.TOKEN_RING:
                continue
            if kind == "trt" and kname != arg:
                continue
            for p in med.ecus:
                terms[f"{kname}/{p}"] = med.min_slot
        if not terms:
            return None
        return BoundCertificate(
            "slot_floor", key, sum(terms.values()), terms
        )

    if kind == "can":
        # On a single-medium CAN architecture a message whose sender
        # and receiver candidate sets are disjoint must cross the bus
        # under every placement.
        if len(arch.media) != 1 or arg not in arch.media:
            return None
        med = arch.media[arg]
        if med.kind is not MediumKind.CAN:
            return None
        terms = {}
        names = tasks.names()
        for t in tasks:
            senders = set(t.candidate_ecus(arch))
            for i, m in enumerate(t.messages):
                if m.target not in names:
                    return None  # unknown sink: forcing argument void
                receivers = set(tasks[m.target].candidate_ecus(arch))
                if not senders or not receivers or senders & receivers:
                    continue  # may be co-located: contributes 0
                rho = med.transmission_ticks(m.size_bits)
                terms[f"{t.name}/{i}"] = _ceil(rho * _CAN_SCALE, t.period)
        if not terms:
            return None
        return BoundCertificate(
            "forced_can_floor", key, sum(terms.values()), terms
        )

    # max_util: spread the total minimal demand fractionally over all
    # candidate machines; no machine can be below the average, and none
    # below the largest single task.
    scale = int(arg)
    terms = {}
    ecus: set[str] = set()
    for t in tasks:
        cands = t.candidate_ecus(arch)
        if not cands:
            continue
        ecus.update(cands)
        terms[t.name] = min(
            _ceil(t.wcet[p] * scale, t.period) for p in cands
        )
    if not terms:
        return None
    n = max(len(ecus), 1)
    bound = max(_ceil(sum(terms.values()), n), max(terms.values()))
    return BoundCertificate(
        "util_packing", key, bound, terms, meta={"ecus": n}
    )


def repaired_upper(
    tasks, arch, objective, anneal_iterations: int = 800, seed: int = 0
):
    """Best feasible allocation the repaired heuristics reach, or None.

    Returns ``(allocation, cost, exact)`` where ``cost`` is recomputed
    by the independent analysis (:func:`repro.certify.audit.
    independent_cost`) -- never the heuristic's own claim -- and
    ``exact`` says whether that cost is a unique function of the
    allocation (False only for ``sum_resp``).  Candidates that fail the
    full schedulability re-check are dropped: an unschedulable
    allocation bounds nothing.
    """
    from repro.analysis.feasibility import check_allocation
    from repro.baselines.annealing import simulated_annealing
    from repro.baselines.greedy import greedy_first_fit
    from repro.certify.audit import independent_cost
    from repro.core.objectives import objective_spec

    candidates = []
    g = greedy_first_fit(tasks, arch)
    if g.feasible and g.allocation is not None:
        candidates.append(g.allocation)
    if anneal_iterations > 0:
        # The annealing walk doubles as the repair step: when greedy
        # fails (or lands on a poor placement) it searches the
        # neighbourhood for a schedulable, cheaper one.
        spec, medium = objective_spec(objective)
        try:
            sa = simulated_annealing(
                tasks,
                arch,
                objective=spec,
                medium=medium,
                iterations=anneal_iterations,
                seed=seed,
            )
        except ValueError:
            sa = None
        if sa is not None and sa.feasible and sa.allocation is not None:
            candidates.append(sa.allocation)
    best = None
    for alloc in candidates:
        if check_allocation(tasks, arch, alloc).problems:
            continue
        cost, exact = independent_cost(tasks, arch, alloc, objective)
        if best is None or cost < best[1]:
            best = (alloc, int(cost), exact)
    return best


class RelaxationBoundsProvider(BoundsProvider):
    """The certified dual-bounds sidecar as a provider.

    Proposes a :class:`~repro.core.api.BoundsReport` combining the
    certificate-backed relaxation floor (:func:`dual_floor`) with a
    witness-backed heuristic upper bound (:func:`repaired_upper`).
    Stateless and cheap enough to run synchronously
    (``bounds_mode="auto"``); the parallel engine can also race it
    mid-flight (``bounds_mode="race"``).
    """

    name = "relaxation"

    def __init__(self, anneal_iterations: int = 800, seed: int = 0):
        self.anneal_iterations = anneal_iterations
        self.seed = seed

    def propose(self, tasks, arch, request) -> BoundsReport | None:
        from repro.io.json_codec import allocation_to_dict

        objective = getattr(request, "objective", None)
        if objective is None:
            return None
        t0 = time.perf_counter()
        cert = dual_floor(tasks, arch, objective)
        upper = repaired_upper(
            tasks, arch, objective, self.anneal_iterations, self.seed
        )
        if cert is None and upper is None:
            return None
        rep = BoundsReport(provider=self.name)
        if cert is not None:
            rep.lower = cert.bound
            rep.certificate = cert
        if upper is not None:
            alloc, cost, exact = upper
            rep.upper = cost
            rep.witness = allocation_to_dict(alloc)
            rep.exact = exact
        rep.seconds = time.perf_counter() - t0
        return rep
