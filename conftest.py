"""Repository-root pytest plumbing.

1. Ensure the in-tree package is importable when running pytest from the
   repository root, even without an editable install (this offline
   environment lacks the `wheel` package, so `pip install -e .` cannot
   build; a `.pth` file or this conftest provides the equivalent).
2. A per-test wall-clock timeout (``tier1_test_timeout`` ini option, in
   seconds) so a hung solver probe or a deadlocked worker process fails
   that one test instead of stalling the tier-1 suite forever.  It is a
   SIGALRM-based implementation (``pytest-timeout`` is not available in
   this environment): the alarm fires inside the test call phase and
   raises a plain ``Failed``, so fixtures and the rest of the session
   keep running.  POSIX-only by construction; on platforms without
   ``SIGALRM`` (or off the main thread) it degrades to a no-op.  Override
   per test with ``@pytest.mark.tier1_timeout(seconds)``; ``0`` disables.
"""

import os
import signal
import sys
import threading

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_addoption(parser):
    parser.addini(
        "tier1_test_timeout",
        "per-test wall-clock timeout in seconds (0 disables)",
        default="0",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier1_timeout(seconds): override the per-test wall-clock timeout "
        "for one test (0 disables)",
    )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("tier1_timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("tier1_test_timeout"))
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_for(item)
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)

    def on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the per-test timeout ({seconds:g}s)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
