"""Ensure the in-tree package is importable when running pytest from the
repository root, even without an editable install (this offline
environment lacks the `wheel` package, so `pip install -e .` cannot build;
a `.pth` file or this conftest provides the equivalent)."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
